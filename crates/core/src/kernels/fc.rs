//! Matrix-vector (fully-connected) kernels at all five optimization
//! levels, including the Table II inner-loop schedules.

use super::act_sw::{emit_requant_act, emit_requant_hoists};
use super::{regs, KernelCtx, MatvecSpec, PtrSrc, ACC_POOL, MAX_TILE, WP_POOL};
use crate::error::CoreError;
use crate::optlevel::OptLevel;
use rnnasip_isa::{LoopIdx, Reg};
use rnnasip_sim::{KernelRegion, ShortcutAct, ShortcutPtr};

/// Emits a complete matrix-vector kernel for the context's level.
///
/// # Errors
///
/// [`CoreError::Shape`] for odd `n_in` at SIMD levels (the runner pads
/// before calling), or zero-sized shapes.
pub fn emit_matvec(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec) -> Result<(), CoreError> {
    if spec.n_out == 0 || spec.n_in == 0 {
        return Err(CoreError::Shape("matvec with empty shape".into()));
    }
    if ctx.level.has_xpulp() && !spec.n_in.is_multiple_of(2) {
        return Err(CoreError::Shape(format!(
            "SIMD kernels need even n_in, got {}",
            spec.n_in
        )));
    }
    let start_addr = ctx.asm.here();
    match ctx.level {
        OptLevel::Baseline => emit_baseline(ctx, spec),
        OptLevel::Xpulp => emit_xpulp(ctx, spec),
        OptLevel::OfmTile | OptLevel::SdotSp | OptLevel::IfmTile => emit_tiled(ctx, spec),
    }
    record_region(ctx, spec, start_addr);
    Ok(())
}

/// Records a [`KernelRegion`] descriptor for the code just emitted so the
/// simulator's shortcut tier can recognize it. Recording is unconditional
/// for well-formed specs; the simulator-side walker rejects regions it
/// cannot prove safe (e.g. the baseline level's spilled accumulator).
fn record_region(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec, start_addr: u32) {
    if spec.out_stride <= 0 {
        return;
    }
    let ptr = |src: PtrSrc| match src {
        PtrSrc::Const(addr) => ShortcutPtr::Const(addr),
        PtrSrc::Global(cell) => ShortcutPtr::Cell(cell),
    };
    let act = match spec.act {
        rnnasip_nn::Act::None => ShortcutAct::None,
        rnnasip_nn::Act::Relu => ShortcutAct::Relu,
        rnnasip_nn::Act::Tanh => ShortcutAct::Tanh,
        rnnasip_nn::Act::Sigmoid => ShortcutAct::Sigmoid,
    };
    ctx.regions.push(KernelRegion {
        start_addr,
        end_addr: ctx.asm.here(),
        w_base: spec.w_base,
        bias32: spec.bias32,
        x: ptr(spec.x),
        out: ptr(spec.out),
        out_stride: spec.out_stride as u32,
        n_in: spec.n_in as u32,
        n_out: spec.n_out as u32,
        act,
    });
}

/// Level (a): scalar RV32IMC with the accumulator spilled to memory,
/// reproducing the instruction mix of Table Ia (two `lh`, one `lw`, one
/// `sw`, one `mac`, two `addi`, one `bltu` per MAC).
fn emit_baseline(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec) {
    emit_requant_hoists(ctx, spec.act);
    emit_bias_base(ctx, spec);
    {
        let a = &mut *ctx.asm;
        a.li(regs::SPILL, spec.scratch as i32);
        a.li(regs::WP, spec.w_base as i32);
        a.li(regs::OUT_CNT, spec.n_out as i32);
    }
    ctx.load_ptr(regs::OP, spec.out);
    let out_loop = ctx.asm.new_label();
    ctx.asm.bind(out_loop);
    // Reset the input cursor and its end bound for this output.
    ctx.load_ptr(regs::XP, spec.x);
    {
        let a = &mut *ctx.asm;
        if 2 * spec.n_in < 2048 {
            a.addi(regs::XEND, regs::XP, 2 * spec.n_in as i32);
        } else {
            a.li(regs::XEND, 2 * spec.n_in as i32);
            a.add(regs::XEND, regs::XP, regs::XEND);
        }
        // Seed the spilled accumulator with the pre-shifted bias.
        a.lw(regs::ACC0, 0, regs::BP);
        a.addi(regs::BP, regs::BP, 4);
        a.sw(regs::ACC0, 0, regs::SPILL);

        // Inner loop: one MAC per iteration, accumulator in memory.
        let inner = a.new_label();
        a.bind(inner);
        a.lh(regs::X0, 0, regs::WP); // weight
        a.lh(regs::X1, 0, regs::XP); // input
        a.lw(regs::ACC0, 0, regs::SPILL); // accumulator
        a.addi(regs::WP, regs::WP, 2); // breaks the load-use pair
        a.mac(regs::ACC0, regs::X0, regs::X1);
        a.sw(regs::ACC0, 0, regs::SPILL);
        a.addi(regs::XP, regs::XP, 2);
        a.bltu(regs::XP, regs::XEND, inner);
    }
    // Requantize, activate, store.
    emit_requant_act(ctx, regs::ACC0, spec.act);
    {
        let a = &mut *ctx.asm;
        a.sh(regs::ACC0, 0, regs::OP);
        if spec.out_stride < 2048 {
            a.addi(regs::OP, regs::OP, spec.out_stride);
        } else {
            a.li(regs::X0, spec.out_stride);
            a.add(regs::OP, regs::OP, regs::X0);
        }
        a.addi(regs::OUT_CNT, regs::OUT_CNT, -1);
        a.bnez(regs::OUT_CNT, out_loop);
    }
}

/// Sets `BP` to the bias-seed base (shared by all levels above baseline,
/// which advance it with post-increment loads... baseline advances it
/// with `addi`).
fn emit_bias_base(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec) {
    ctx.asm.li(regs::BP, spec.bias32 as i32);
}

/// Level (b): packed SIMD + hardware loop + post-increment loads, one
/// output at a time (Section III-B).
fn emit_xpulp(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec) {
    emit_requant_hoists(ctx, spec.act);
    emit_bias_base(ctx, spec);
    let acc = ACC_POOL[0]; // a4
    {
        let a = &mut *ctx.asm;
        a.li(regs::WP, spec.w_base as i32);
        a.li(regs::OUT_CNT, spec.n_out as i32);
    }
    ctx.load_ptr(regs::OP, spec.out);
    let out_loop = ctx.asm.new_label();
    ctx.asm.bind(out_loop);
    ctx.load_ptr(regs::XP, spec.x);
    {
        let a = &mut *ctx.asm;
        // acc = bias seed.
        a.lw_post(acc, 4, regs::BP);
        a.li(regs::CNT, (spec.n_in / 2) as i32);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, regs::CNT, end);
        a.lw_post(regs::WV0, 4, regs::WP); // weight pair
        a.lw_post(regs::X0, 4, regs::XP); // input pair (stalls the sdot)
        a.pv_sdotsp_h(acc, regs::WV0, regs::X0);
        a.bind(end);
    }
    emit_requant_act(ctx, acc, spec.act);
    {
        let a = &mut *ctx.asm;
        a.sh_post(acc, spec.out_stride, regs::OP);
        a.addi(regs::OUT_CNT, regs::OUT_CNT, -1);
        a.bnez(regs::OUT_CNT, out_loop);
    }
}

/// Levels (c)–(e): output-FM tiling, optionally with the `pl.sdotsp.h`
/// schedule and input-FM tiling.
fn emit_tiled(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec) {
    emit_requant_hoists(ctx, spec.act);
    let row_bytes = (spec.n_in * 2) as i32;
    {
        let a = &mut *ctx.asm;
        a.li(regs::WP, spec.w_base as i32);
        a.li(regs::ROWB, row_bytes);
    }
    emit_bias_base(ctx, spec);
    ctx.load_ptr(regs::OP, spec.out);

    let mut remaining = spec.n_out;
    while remaining > 0 {
        let tile = tile_size(ctx.level, remaining, ctx.max_tile);
        emit_tile(ctx, spec, tile);
        remaining -= tile;
    }
}

/// Chooses the next output-tile size for the level.
fn tile_size(level: OptLevel, remaining: usize, max_tile: usize) -> usize {
    let max = max_tile.clamp(1, MAX_TILE).min(remaining);
    if level.has_sdotsp_ext() && max >= 2 {
        // The pl.sdotsp SPR alternation needs an even tile.
        max & !1
    } else {
        max
    }
}

/// Emits one output tile: pointer setup, accumulator seeds, the inner
/// loop in the level's schedule, then requantize/activate/store.
fn emit_tile(ctx: &mut KernelCtx<'_>, spec: &MatvecSpec, n: usize) {
    let n_pairs = spec.n_in / 2;
    {
        let a = &mut *ctx.asm;
        // Tile row pointers: wp[0] = WP; wp[j] = wp[j-1] + row_bytes.
        a.mv(WP_POOL[0], regs::WP);
        for j in 1..n {
            a.add(WP_POOL[j], WP_POOL[j - 1], regs::ROWB);
        }
        // Advance the seed for the next tile.
        a.add(regs::WP, WP_POOL[n - 1], regs::ROWB);
        // Accumulator seeds from the pre-shifted bias array.
        for (j, &acc) in ACC_POOL.iter().enumerate().take(n) {
            a.lw(acc, 4 * j as i32, regs::BP);
        }
        a.addi(regs::BP, regs::BP, 4 * n as i32);
    }
    ctx.load_ptr(regs::XP, spec.x);

    match ctx.level {
        OptLevel::OfmTile => emit_tile_ofm(ctx, n, n_pairs),
        // A lone remainder output cannot alternate the two SPRs, so it
        // falls back to the explicit-load schedule at both d and e.
        OptLevel::SdotSp if n >= 2 => emit_tile_sdotsp(ctx, n, n_pairs),
        OptLevel::IfmTile if n >= 2 => emit_tile_ifm(ctx, n, n_pairs),
        OptLevel::SdotSp | OptLevel::IfmTile => emit_tile_ofm(ctx, n, n_pairs),
        _ => unreachable!("tiled emission is only for levels c-e"),
    }

    // Requantize, activate and store each tile output.
    for &acc in ACC_POOL.iter().take(n) {
        emit_requant_act(ctx, acc, spec.act);
        ctx.asm.sh_post(acc, spec.out_stride, regs::OP);
    }
}

/// Level (c) inner loop: one shared input load, `N` explicit weight
/// loads through the two alternating value registers, `N` `pv.sdotsp.h`.
/// The alternation keeps every load two instructions ahead of its
/// consumer, so the loop runs stall-free for `N >= 2` (Table Ic).
fn emit_tile_ofm(ctx: &mut KernelCtx<'_>, n: usize, n_pairs: usize) {
    let a = &mut *ctx.asm;
    a.li(regs::CNT, n_pairs as i32);
    let end = a.new_label();
    a.lp_setup(LoopIdx::L0, regs::CNT, end);
    a.lw_post(regs::X0, 4, regs::XP);
    if n == 1 {
        // Degenerate tile: same as level (b) — one bubble per iteration.
        a.lw_post(regs::WV0, 4, WP_POOL[0]);
        a.pv_sdotsp_h(ACC_POOL[0], regs::WV0, regs::X0);
    } else {
        let wv = [regs::WV0, regs::WV1];
        // Software pipeline: prime two weight loads, then consume and
        // refill each value register so every load sits two instructions
        // ahead of its consumer.
        a.lw_post(wv[0], 4, WP_POOL[0]);
        a.lw_post(wv[1], 4, WP_POOL[1]);
        for j in 0..n {
            a.pv_sdotsp_h(ACC_POOL[j], wv[j % 2], regs::X0);
            if j + 2 < n {
                a.lw_post(wv[j % 2], 4, WP_POOL[j + 2]);
            }
        }
    }
    a.bind(end);
}

/// Level (d) inner loop (Table II, right): one shared input load and `N`
/// merged load-and-compute `pl.sdotsp.h` instructions. Instruction `j`
/// accumulates output `j` from `SPR[j mod 2]` while prefetching the pair
/// that instruction `j+2` (same parity) will consume — which is why its
/// weight pointer belongs to output `(j + 2) mod N`. The two SPRs are
/// pre-loaded before the loop.
fn emit_tile_sdotsp(ctx: &mut KernelCtx<'_>, n: usize, n_pairs: usize) {
    debug_assert!(n >= 2 && n.is_multiple_of(2), "sdotsp tiles are even");
    let a = &mut *ctx.asm;
    // Preload SPR0/SPR1 with the first pairs of rows 0 and 1.
    a.pl_sdotsp(0, Reg::ZERO, WP_POOL[0], Reg::ZERO);
    a.pl_sdotsp(1, Reg::ZERO, WP_POOL[1], Reg::ZERO);
    a.li(regs::CNT, n_pairs as i32);
    let end = a.new_label();
    a.lp_setup(LoopIdx::L0, regs::CNT, end);
    a.lw_post(regs::X0, 4, regs::XP); // stalls the first pl.sdotsp (the Table II bubble)
    for j in 0..n {
        a.pl_sdotsp((j % 2) as u8, ACC_POOL[j], WP_POOL[(j + 2) % n], regs::X0);
    }
    a.bind(end);
}

/// Level (e) inner loop: two input pairs per iteration (`2N` merged
/// MACs), which moves every `pl.sdotsp` at least two instructions away
/// from the input load — the bubble of level (d) disappears
/// (Section III-E, last paragraph).
fn emit_tile_ifm(ctx: &mut KernelCtx<'_>, n: usize, n_pairs: usize) {
    debug_assert!(n >= 2, "input-FM tiling needs at least two outputs");
    let iterations = n_pairs / 2;
    let leftover = n_pairs % 2;
    let a = &mut *ctx.asm;
    a.pl_sdotsp(0, Reg::ZERO, WP_POOL[0], Reg::ZERO);
    a.pl_sdotsp(1, Reg::ZERO, WP_POOL[1], Reg::ZERO);
    // Flat schedule over 2N merged MACs; pointer of instruction k
    // prefetches for instruction k+2.
    let schedule = |a: &mut rnnasip_asm::Asm, xs: &[Reg], n: usize| {
        let total = xs.len() * n;
        for k in 0..total {
            let x = xs[k / n];
            a.pl_sdotsp((k % 2) as u8, ACC_POOL[k % n], WP_POOL[(k + 2) % n], x);
        }
    };
    if iterations > 0 {
        a.li(regs::CNT, iterations as i32);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, regs::CNT, end);
        a.lw_post(regs::X0, 4, regs::XP);
        a.lw_post(regs::X1, 4, regs::XP);
        schedule(a, &[regs::X0, regs::X1], n);
        a.bind(end);
    }
    if leftover == 1 {
        a.lw_post(regs::X0, 4, regs::XP);
        schedule(a, &[regs::X0], n);
    }
}

/// Returns the Table II comparison listing: the inner loop with output-FM
/// tiling only (left column) and with the `pl.sdotsp.h` instruction
/// (right column), as disassembly text for a tile of four outputs.
pub fn table2_listing() -> (String, String) {
    use crate::layout::DataLayout;
    use rnnasip_nn::Act;

    let spec = MatvecSpec {
        w_base: 0x1000,
        bias32: 0x2000,
        x: super::PtrSrc::Const(0x3000),
        out: super::PtrSrc::Const(0x4000),
        out_stride: 2,
        n_in: 18, // 9 packed pairs, matching the paper's lp.setupi count
        n_out: 4,
        act: Act::None,
        scratch: 0x5000,
    };
    let _ = DataLayout::new(0, 0x8000);
    let render = |level: OptLevel| -> String {
        let mut asm = rnnasip_asm::Asm::new(0);
        let mut regions = Vec::new();
        let mut ctx = KernelCtx {
            asm: &mut asm,
            level,
            luts: (0, 0, 0, 0),
            max_tile: 4,
            regions: &mut regions,
        };
        emit_matvec(&mut ctx, &spec).expect("table II spec is valid");
        let prog = asm.assemble().expect("table II listing assembles");
        prog.iter()
            .map(|item| format!("{}\n", item.instr))
            .collect()
    };
    (render(OptLevel::OfmTile), render(OptLevel::SdotSp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_sizes_respect_level_constraints() {
        assert_eq!(tile_size(OptLevel::OfmTile, 23, 10), 10);
        assert_eq!(tile_size(OptLevel::OfmTile, 3, 10), 3);
        assert_eq!(tile_size(OptLevel::SdotSp, 23, 10), 10);
        assert_eq!(tile_size(OptLevel::SdotSp, 7, 10), 6);
        assert_eq!(tile_size(OptLevel::SdotSp, 1, 10), 1);
        assert_eq!(tile_size(OptLevel::IfmTile, 9, 10), 8);
        // The ablation knob caps the tile.
        assert_eq!(tile_size(OptLevel::SdotSp, 23, 4), 4);
        assert_eq!(tile_size(OptLevel::OfmTile, 23, 1), 1);
        // Out-of-range requests clamp instead of panicking.
        assert_eq!(tile_size(OptLevel::OfmTile, 23, 99), 10);
    }

    #[test]
    fn table2_listing_contains_expected_mnemonics() {
        let (ofm, sdotsp) = table2_listing();
        assert!(ofm.contains("pv.sdotsp.h"));
        assert!(ofm.contains("p.lw"));
        assert!(!ofm.contains("pl.sdotsp"));
        assert!(sdotsp.contains("pl.sdotsp.h.0"));
        assert!(sdotsp.contains("pl.sdotsp.h.1"));
        assert!(sdotsp.contains("lp.setup"));
    }
}
