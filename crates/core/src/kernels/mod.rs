//! Kernel generators: RISC-V code emission for FC / LSTM / CNN layers at
//! every optimization level.
//!
//! # Register convention
//!
//! The emitters use a fixed allocation (no graph coloring — the paper's
//! hand-optimized kernels do the same):
//!
//! | Register(s) | Role |
//! |---|---|
//! | `a0` | input (activation) cursor, post-incremented |
//! | `a1` | output cursor, post-incremented |
//! | `a2` | bias-seed cursor (32-bit pre-shifted biases) |
//! | `a3` | weight cursor / tile-row seed |
//! | `ra` | weight row stride in bytes (tiled levels) |
//! | `t2` | inner-loop trip count |
//! | `t0`, `t1` | input pair values (`t1` only with input-FM tiling) |
//! | `gp`, `tp` | alternating weight values / scratch |
//! | `s0`–`s9` | weight row pointers of the output tile (up to 10) |
//! | `a4`–`a7`, `t3`–`t6`, `s10`, `s11` | tile accumulators (up to 10) |
//! | `s8`, `s9` | baseline-only saturation constants (+32767 / −32768) |
//! | `s6`, `s7` | software-PLA LUT base pointers (levels a–b only) |
//! | `t4` | baseline output-loop counter |
//!
//! The pools overlap deliberately: the baseline level never tiles (so
//! `s6`–`s9` are free for its constants), and the tiled levels never run
//! the software PLA (the `pl.tanh`/`pl.sig` instructions exist from
//! level c on).

pub mod act_sw;
pub mod conv;
pub mod fc;
pub mod fc8;
pub mod lstm;

use rnnasip_isa::Reg;

/// Fixed register roles (see module docs).
pub mod regs {
    use rnnasip_isa::Reg;

    /// Input (activation) cursor.
    pub const XP: Reg = Reg::A0;
    /// Output cursor.
    pub const OP: Reg = Reg::A1;
    /// Bias-seed cursor.
    pub const BP: Reg = Reg::A2;
    /// Weight cursor / tile-row seed.
    pub const WP: Reg = Reg::A3;
    /// Weight row stride in bytes.
    pub const ROWB: Reg = Reg::RA;
    /// Inner-loop trip count.
    pub const CNT: Reg = Reg::T2;
    /// First input pair value.
    pub const X0: Reg = Reg::T0;
    /// Second input pair value (input-FM tiling).
    pub const X1: Reg = Reg::T1;
    /// Alternating weight value 0 / scratch.
    pub const WV0: Reg = Reg::GP;
    /// Alternating weight value 1 / scratch.
    pub const WV1: Reg = Reg::TP;
    /// Baseline saturation high constant (+32767).
    pub const SAT_HI: Reg = Reg::S8;
    /// Baseline saturation low constant (−32768).
    pub const SAT_LO: Reg = Reg::S9;
    /// Software-PLA slope-LUT base.
    pub const LUT_M: Reg = Reg::S6;
    /// Software-PLA intercept-LUT base.
    pub const LUT_Q: Reg = Reg::S7;
    /// Baseline output-loop counter.
    pub const OUT_CNT: Reg = Reg::T4;
    /// Baseline accumulator value.
    pub const ACC0: Reg = Reg::T3;
    /// Baseline accumulator spill-slot address.
    pub const SPILL: Reg = Reg::T5;
    /// Baseline input end bound.
    pub const XEND: Reg = Reg::T6;
}

/// Weight-row pointer pool for output tiles.
pub const WP_POOL: [Reg; 10] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
];

/// Accumulator pool for output tiles.
pub const ACC_POOL: [Reg; 10] = [
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::S10,
    Reg::S11,
];

/// Maximum output-tile size, limited by the register pools (the paper:
/// "N can be increased until the available registers are exhausted").
pub const MAX_TILE: usize = 10;

/// Where a kernel pointer comes from at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrSrc {
    /// A compile-time constant address (`li`).
    Const(u32),
    /// Loaded from a 32-bit "global" cell in data memory (`lw`) — used
    /// when an outer software loop advances the pointer between kernel
    /// invocations (LSTM time steps, CNN output pixels).
    Global(u32),
}

/// A matrix-vector kernel instance: `out = act(bias + W · x)`.
///
/// `n_in` must be even (the runner pads); `n_out` is unconstrained.
#[derive(Clone, Copy, Debug)]
pub struct MatvecSpec {
    /// Row-major weight base address (`n_out × n_in` halfwords, plus
    /// [`STREAM_SLACK`](crate::layout::STREAM_SLACK) readable bytes).
    pub w_base: u32,
    /// Pre-shifted 32-bit bias seeds (`n_out` words).
    pub bias32: u32,
    /// Input vector source (`n_in` halfwords).
    pub x: PtrSrc,
    /// Output base source.
    pub out: PtrSrc,
    /// Bytes between consecutive outputs (2 when dense; `2·n_pixels` for
    /// the channel-major CNN output layout).
    pub out_stride: i32,
    /// Input width (even).
    pub n_in: usize,
    /// Output count.
    pub n_out: usize,
    /// Activation applied after requantization.
    pub act: rnnasip_nn::Act,
    /// Word-aligned scratch cell for the baseline level's spilled
    /// accumulator (ignored by levels b–e).
    pub scratch: u32,
}

/// Emission context: the assembler plus everything the emitters need to
/// know about the target configuration.
pub struct KernelCtx<'a> {
    /// The program being built.
    pub asm: &'a mut rnnasip_asm::Asm,
    /// Optimization level to generate for.
    pub level: crate::OptLevel,
    /// Addresses of the staged PLA LUTs `(tanh_m, tanh_q, sig_m, sig_q)`,
    /// used by the software activation routine at levels a–b.
    pub luts: (u32, u32, u32, u32),
    /// Output-tile size cap (1..=[`MAX_TILE`]); the paper's "N can be
    /// increased until the available registers are exhausted" knob,
    /// exposed for the tiling ablation.
    pub max_tile: usize,
    /// Kernel-region descriptors recorded during emission, consumed by
    /// the simulator's shortcut tier (see [`rnnasip_sim::KernelRegion`]).
    pub regions: &'a mut Vec<rnnasip_sim::KernelRegion>,
}

impl KernelCtx<'_> {
    /// Loads a pointer source into `reg`.
    pub fn load_ptr(&mut self, reg: Reg, src: PtrSrc) {
        match src {
            PtrSrc::Const(addr) => self.asm.li(reg, addr as i32),
            PtrSrc::Global(cell) => {
                // li + lw keeps the generated pattern uniform; the cell
                // address always fits an li.
                self.asm.li(reg, cell as i32);
                self.asm.lw(reg, 0, reg);
            }
        }
    }
}
