//! LSTM kernels: per-step gate matrix-vector products plus the
//! element-wise cell/hidden update (Equations 1–6).
//!
//! The runner stages each gate's input and recurrent weights as one
//! *combined* matrix with rows `[Wx_row ‖ Wh_row]`, and the kernel keeps
//! the activations in a combined `[x_t ‖ h_{t-1}]` buffer, so every gate
//! pre-activation is exactly one FC matvec (reusing the Table I/II
//! schedules). Per time step the generated code:
//!
//! 1. copies `x_t` into the combined buffer (word copies, hardware loop
//!    from level b),
//! 2. runs the four gate matvecs (`o,f,i,g` order; `sig`×3, `tanh`),
//! 3. runs the element-wise update loop
//!    (`c ← f∘c + i∘g`, `h ← o∘tanh(c)`), writing `h` back into the
//!    combined buffer for the next step,
//! 4. decrements the step counter held in a memory "global".

use super::act_sw::{emit_pla_hoist, emit_sat_hoist_baseline, emit_sw_pla, ActFunc};
use super::fc::emit_matvec;
use super::{regs, KernelCtx, MatvecSpec, PtrSrc};
use crate::error::CoreError;
use rnnasip_isa::{BranchOp, LoopIdx, Reg};
use rnnasip_nn::Act;

/// Addresses and shape of one staged LSTM stage.
#[derive(Clone, Copy, Debug)]
pub struct LstmSpec {
    /// Combined `n × (m+n)` gate weight bases, `o,f,i,g` order.
    pub gates_w: [u32; 4],
    /// Pre-shifted gate bias bases.
    pub gates_b32: [u32; 4],
    /// Gate pre-activation output buffers (`n` halfwords each).
    pub gate_bufs: [u32; 4],
    /// Combined activation buffer: `x_t` at `[0, 2m)`, `h` at
    /// `[2m, 2(m+n))`.
    pub xh: u32,
    /// Cell-state buffer (`n` halfwords).
    pub c_buf: u32,
    /// First input vector of the staged `T × m` sequence.
    pub x_seq: u32,
    /// Global cell holding the current input pointer.
    pub g_xptr: u32,
    /// Global cell holding the remaining step count.
    pub g_steps: u32,
    /// Number of time steps.
    pub steps: usize,
    /// Input width `m` (even).
    pub n_in: usize,
    /// Hidden width `n` (even).
    pub n_hidden: usize,
    /// Baseline spill scratch.
    pub scratch: u32,
}

impl LstmSpec {
    /// Address where the final hidden state is left (inside the combined
    /// buffer).
    pub fn h_addr(&self) -> u32 {
        self.xh + 2 * self.n_in as u32
    }

    /// The matvec spec for gate `g` over output rows `[row0, row0+rows)`.
    ///
    /// Gate rows are independent, so slicing only offsets the weight,
    /// bias and gate-buffer bases; the full range reproduces the
    /// single-core gate matvec exactly.
    pub fn gate_matvec_rows(&self, g: usize, row0: usize, rows: usize) -> MatvecSpec {
        let act = if g == 3 { Act::Tanh } else { Act::Sigmoid };
        MatvecSpec {
            w_base: self.gates_w[g] + (row0 * (self.n_in + self.n_hidden) * 2) as u32,
            bias32: self.gates_b32[g] + (row0 * 4) as u32,
            x: PtrSrc::Const(self.xh),
            out: PtrSrc::Const(self.gate_bufs[g] + (row0 * 2) as u32),
            out_stride: 2,
            n_in: self.n_in + self.n_hidden,
            n_out: rows,
            act,
            scratch: self.scratch,
        }
    }
}

/// Emits a complete LSTM stage (all `steps` time steps).
///
/// # Errors
///
/// [`CoreError::Shape`] when widths are odd or zero.
pub fn emit_lstm(ctx: &mut KernelCtx<'_>, spec: &LstmSpec) -> Result<(), CoreError> {
    if spec.n_in == 0 || spec.n_hidden == 0 || spec.steps == 0 {
        return Err(CoreError::Shape("empty LSTM stage".into()));
    }
    if !spec.n_in.is_multiple_of(2) || !spec.n_hidden.is_multiple_of(2) {
        return Err(CoreError::Shape(format!(
            "LSTM kernels need even widths, got {}x{}",
            spec.n_in, spec.n_hidden
        )));
    }

    // Initialise the step globals.
    {
        let a = &mut *ctx.asm;
        a.li(regs::X0, spec.x_seq as i32);
        a.li(regs::WV1, spec.g_xptr as i32);
        a.sw(regs::X0, 0, regs::WV1);
        a.li(regs::X0, spec.steps as i32);
        a.li(regs::WV1, spec.g_steps as i32);
        a.sw(regs::X0, 0, regs::WV1);
    }

    let step_top = ctx.asm.new_label();
    ctx.asm.bind(step_top);

    emit_copy_x(ctx, spec);

    // Gate matvecs over the combined buffer.
    for g in 0..4 {
        emit_matvec(ctx, &spec.gate_matvec_rows(g, 0, spec.n_hidden))?;
    }

    emit_update_rows(ctx, spec, 0, spec.n_hidden);

    // Step counter. The unrolled tiled body easily exceeds the ±4 KiB
    // conditional-branch range, so the back edge is an inverted branch
    // over a `jal` (±1 MiB).
    {
        let a = &mut *ctx.asm;
        a.li(regs::WV1, spec.g_steps as i32);
        a.lw(regs::X0, 0, regs::WV1);
        a.addi(regs::X0, regs::X0, -1);
        a.sw(regs::X0, 0, regs::WV1);
        let done = a.new_label();
        a.branch(BranchOp::Beq, regs::X0, Reg::ZERO, done);
        a.j(step_top);
        a.bind(done);
    }
    Ok(())
}

/// Copies `x_t` (m halfwords = m/2 words) from the sequence cursor into
/// the combined buffer and advances the cursor global.
fn emit_copy_x(ctx: &mut KernelCtx<'_>, spec: &LstmSpec) {
    let words = spec.n_in / 2;
    let a = &mut *ctx.asm;
    a.li(regs::WV1, spec.g_xptr as i32);
    a.lw(regs::X0, 0, regs::WV1); // src cursor
    a.li(regs::X1, spec.xh as i32); // dst
    if ctx.level.has_xpulp() {
        a.li(regs::CNT, words as i32);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, regs::CNT, end);
        a.lw_post(regs::WV0, 4, regs::X0);
        a.sw_post(regs::WV0, 4, regs::X1);
        a.bind(end);
    } else {
        a.addi(regs::ACC0, regs::X0, 4 * words as i32); // end bound
        let top = a.new_label();
        a.bind(top);
        a.lw(regs::WV0, 0, regs::X0);
        a.sw(regs::WV0, 0, regs::X1);
        a.addi(regs::X0, regs::X0, 4);
        a.addi(regs::X1, regs::X1, 4);
        a.branch(BranchOp::Bltu, regs::X0, regs::ACC0, top);
    }
    // The advanced source cursor is the next step's x_t.
    a.sw(regs::X0, 0, regs::WV1);
}

/// Emits the element-wise state update over hidden rows
/// `[row0, row0+rows)`:
/// `c ← sat((f·c)>>12 + (i·g)>>12)`, `h ← sat((o·tanh(c))>>12)`.
///
/// Rows are element-wise independent; the full range reproduces the
/// single-core update exactly, a sub-range is one core's slice.
pub fn emit_update_rows(ctx: &mut KernelCtx<'_>, spec: &LstmSpec, row0: usize, rows: usize) {
    // Hoists for the in-loop tanh and (baseline) saturation.
    if !ctx.level.has_xpulp() {
        emit_sat_hoist_baseline(ctx);
    }
    if !ctx.level.has_act_ext() {
        emit_pla_hoist(ctx, ActFunc::Tanh);
    }
    let off = (row0 * 2) as i32;
    let (optr, fptr, iptr, gptr) = (Reg::A0, Reg::A1, Reg::A2, Reg::A3);
    let cptr = Reg::T5;
    let hptr = Reg::T6;
    {
        let a = &mut *ctx.asm;
        a.li(optr, spec.gate_bufs[0] as i32 + off);
        a.li(fptr, spec.gate_bufs[1] as i32 + off);
        a.li(iptr, spec.gate_bufs[2] as i32 + off);
        a.li(gptr, spec.gate_bufs[3] as i32 + off);
        a.li(cptr, spec.c_buf as i32 + off);
        a.li(hptr, spec.h_addr() as i32 + off);
    }

    if ctx.level.has_xpulp() {
        let a = &mut *ctx.asm;
        a.li(regs::CNT, rows as i32);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, regs::CNT, end);
        a.lh_post(regs::WV0, 2, fptr); // f
        a.lh(regs::WV1, 0, cptr); // c
        a.mul(Reg::T3, regs::WV0, regs::WV1);
        a.srai(Reg::T3, Reg::T3, 12);
        a.lh_post(regs::WV0, 2, iptr); // i
        a.lh_post(regs::WV1, 2, gptr); // g
        a.mul(Reg::T4, regs::WV0, regs::WV1);
        a.srai(Reg::T4, Reg::T4, 12);
        a.add(Reg::T3, Reg::T3, Reg::T4);
        a.clip(Reg::T3, Reg::T3, 16);
        a.sh_post(Reg::T3, 2, cptr); // c_t
        let _ = a;
        emit_cell_tanh(ctx);
        let a = &mut *ctx.asm;
        a.lh_post(regs::WV0, 2, optr); // o
        a.mul(Reg::T3, regs::WV0, Reg::T3);
        a.srai(Reg::T3, Reg::T3, 12);
        a.clip(Reg::T3, Reg::T3, 16);
        a.sh_post(Reg::T3, 2, hptr); // h_t
        a.bind(end);
    } else {
        // Baseline: software loop, counter in s5.
        let a = &mut *ctx.asm;
        a.li(Reg::S5, rows as i32);
        let top = a.new_label();
        a.bind(top);
        a.lh(regs::WV0, 0, fptr);
        a.lh(regs::WV1, 0, cptr);
        a.mul(Reg::T3, regs::WV0, regs::WV1);
        a.srai(Reg::T3, Reg::T3, 12);
        a.lh(regs::WV0, 0, iptr);
        a.lh(regs::WV1, 0, gptr);
        a.mul(Reg::T4, regs::WV0, regs::WV1);
        a.srai(Reg::T4, Reg::T4, 12);
        a.add(Reg::T3, Reg::T3, Reg::T4);
        let _ = a;
        super::act_sw::emit_clamp16_baseline(ctx, Reg::T3);
        ctx.asm.sh(Reg::T3, 0, cptr);
        emit_cell_tanh(ctx);
        let a = &mut *ctx.asm;
        a.lh(regs::WV0, 0, optr);
        a.mul(Reg::T3, regs::WV0, Reg::T3);
        a.srai(Reg::T3, Reg::T3, 12);
        let _ = a;
        super::act_sw::emit_clamp16_baseline(ctx, Reg::T3);
        let a = &mut *ctx.asm;
        a.sh(Reg::T3, 0, hptr);
        for p in [optr, fptr, iptr, gptr, cptr, hptr] {
            a.addi(p, p, 2);
        }
        a.addi(Reg::S5, Reg::S5, -1);
        a.bnez(Reg::S5, top);
    }
}

/// Emits a static word copy of `words` words from `src` to `dst` — the
/// cluster's per-step `x_t → xh` copy, where the step's source address
/// is a compile-time constant (each time step is its own phase program)
/// rather than the single-core kernel's cursor global.
pub fn emit_word_copy(ctx: &mut KernelCtx<'_>, src: u32, dst: u32, words: usize) {
    if words == 0 {
        return;
    }
    let a = &mut *ctx.asm;
    a.li(regs::X0, src as i32);
    a.li(regs::X1, dst as i32);
    if ctx.level.has_xpulp() {
        a.li(regs::CNT, words as i32);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, regs::CNT, end);
        a.lw_post(regs::WV0, 4, regs::X0);
        a.sw_post(regs::WV0, 4, regs::X1);
        a.bind(end);
    } else {
        a.addi(regs::ACC0, regs::X0, 4 * words as i32);
        let top = a.new_label();
        a.bind(top);
        a.lw(regs::WV0, 0, regs::X0);
        a.sw(regs::WV0, 0, regs::X1);
        a.addi(regs::X0, regs::X0, 4);
        a.addi(regs::X1, regs::X1, 4);
        a.branch(BranchOp::Bltu, regs::X0, regs::ACC0, top);
    }
}

/// `t3 ← tanh(t3)` via the level-appropriate mechanism.
fn emit_cell_tanh(ctx: &mut KernelCtx<'_>) {
    if ctx.level.has_act_ext() {
        ctx.asm.pl_tanh(Reg::T3, Reg::T3);
    } else {
        emit_sw_pla(ctx, Reg::T3, ActFunc::Tanh);
    }
}
