//! INT8 matrix-vector kernels (future-work path).
//!
//! Two variants, both four MACs per SIMD instruction:
//!
//! * [`Int8Kernel::PvSdot`] — implementable on the *paper's* core:
//!   output-FM tiling with explicit weight loads and `pv.sdotsp.b`
//!   (the byte twin of the level-c schedule);
//! * [`Int8Kernel::PlSdotB`] — this repository's hardware extension
//!   `pl.sdotsp.b`, the byte twin of the paper's merged load-and-compute
//!   instruction (level-d schedule, one input load per 4·N MACs).

use super::act_sw::emit_requant_hoists;
use super::{regs, KernelCtx, ACC_POOL, MAX_TILE, WP_POOL};
use crate::error::CoreError;
use rnnasip_isa::{DotOp, Instr, LoopIdx, Reg, SimdSize, StoreOp};
use rnnasip_nn::Act;

/// Which INT8 inner-loop schedule to generate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Int8Kernel {
    /// `pv.sdotsp.b` with explicit weight loads (paper-core compatible).
    PvSdot,
    /// `pl.sdotsp.b` merged load-and-compute (extension hardware).
    PlSdotB,
}

/// A staged INT8 matvec instance.
#[derive(Clone, Copy, Debug)]
pub struct Matvec8Spec {
    /// Row-major i8 weights (`n_out × n_in` bytes, n_in a multiple of 4,
    /// plus stream slack).
    pub w_base: u32,
    /// Pre-shifted i32 bias seeds (`bias << 6`).
    pub bias32: u32,
    /// Input vector (`n_in` bytes).
    pub x_base: u32,
    /// Output vector (`n_out` bytes).
    pub out_base: u32,
    /// Input width in bytes (multiple of 4).
    pub n_in: usize,
    /// Output count.
    pub n_out: usize,
    /// Activation (None/Relu).
    pub act: Act,
}

/// Emits an INT8 matvec with the requested schedule.
///
/// # Errors
///
/// [`CoreError::Shape`] when `n_in` is not a multiple of four or shapes
/// are empty.
pub fn emit_matvec8(
    ctx: &mut KernelCtx<'_>,
    spec: &Matvec8Spec,
    kernel: Int8Kernel,
) -> Result<(), CoreError> {
    if spec.n_out == 0 || spec.n_in == 0 {
        return Err(CoreError::Shape("int8 matvec with empty shape".into()));
    }
    if !spec.n_in.is_multiple_of(4) {
        return Err(CoreError::Shape(format!(
            "int8 kernels need n_in % 4 == 0, got {}",
            spec.n_in
        )));
    }
    emit_requant_hoists(ctx, spec.act);
    {
        let a = &mut *ctx.asm;
        a.li(regs::WP, spec.w_base as i32);
        a.li(regs::ROWB, spec.n_in as i32);
        a.li(regs::BP, spec.bias32 as i32);
        a.li(regs::OP, spec.out_base as i32);
    }
    let mut remaining = spec.n_out;
    while remaining > 0 {
        let max = ctx.max_tile.clamp(1, MAX_TILE).min(remaining);
        let n = if matches!(kernel, Int8Kernel::PlSdotB) && max >= 2 {
            max & !1
        } else {
            max
        };
        emit_tile8(ctx, spec, kernel, n);
        remaining -= n;
    }
    Ok(())
}

fn emit_tile8(ctx: &mut KernelCtx<'_>, spec: &Matvec8Spec, kernel: Int8Kernel, n: usize) {
    let n_quads = spec.n_in / 4;
    let a = &mut *ctx.asm;
    a.mv(WP_POOL[0], regs::WP);
    for j in 1..n {
        a.add(WP_POOL[j], WP_POOL[j - 1], regs::ROWB);
    }
    a.add(regs::WP, WP_POOL[n - 1], regs::ROWB);
    for (j, &acc) in ACC_POOL.iter().enumerate().take(n) {
        a.lw(acc, 4 * j as i32, regs::BP);
    }
    a.addi(regs::BP, regs::BP, 4 * n as i32);
    a.li(regs::XP, spec.x_base as i32);

    match kernel {
        Int8Kernel::PvSdot => {
            a.li(regs::CNT, n_quads as i32);
            let end = a.new_label();
            a.lp_setup(LoopIdx::L0, regs::CNT, end);
            a.lw_post(regs::X0, 4, regs::XP);
            if n == 1 {
                a.lw_post(regs::WV0, 4, WP_POOL[0]);
                a.emit(Instr::PvDot {
                    op: DotOp::SdotSp,
                    size: SimdSize::Byte,
                    rd: ACC_POOL[0],
                    rs1: regs::WV0,
                    rs2: regs::X0,
                });
            } else {
                let wv = [regs::WV0, regs::WV1];
                a.lw_post(wv[0], 4, WP_POOL[0]);
                a.lw_post(wv[1], 4, WP_POOL[1]);
                for j in 0..n {
                    a.emit(Instr::PvDot {
                        op: DotOp::SdotSp,
                        size: SimdSize::Byte,
                        rd: ACC_POOL[j],
                        rs1: wv[j % 2],
                        rs2: regs::X0,
                    });
                    if j + 2 < n {
                        a.lw_post(wv[j % 2], 4, WP_POOL[j + 2]);
                    }
                }
            }
            a.bind(end);
        }
        Int8Kernel::PlSdotB => {
            if n == 1 {
                // Degenerate remainder: fall back to explicit loads.
                a.li(regs::CNT, n_quads as i32);
                let end = a.new_label();
                a.lp_setup(LoopIdx::L0, regs::CNT, end);
                a.lw_post(regs::X0, 4, regs::XP);
                a.lw_post(regs::WV0, 4, WP_POOL[0]);
                a.emit(Instr::PvDot {
                    op: DotOp::SdotSp,
                    size: SimdSize::Byte,
                    rd: ACC_POOL[0],
                    rs1: regs::WV0,
                    rs2: regs::X0,
                });
                a.bind(end);
            } else {
                a.pl_sdotsp_b(0, Reg::ZERO, WP_POOL[0], Reg::ZERO);
                a.pl_sdotsp_b(1, Reg::ZERO, WP_POOL[1], Reg::ZERO);
                a.li(regs::CNT, n_quads as i32);
                let end = a.new_label();
                a.lp_setup(LoopIdx::L0, regs::CNT, end);
                a.lw_post(regs::X0, 4, regs::XP);
                for j in 0..n {
                    a.pl_sdotsp_b((j % 2) as u8, ACC_POOL[j], WP_POOL[(j + 2) % n], regs::X0);
                }
                a.bind(end);
            }
        }
    }

    // Requantize (>> 6, clip to i8), activate, store bytes.
    for &acc in ACC_POOL.iter().take(n) {
        let a = &mut *ctx.asm;
        a.srai(acc, acc, 6);
        a.clip(acc, acc, 8);
        if matches!(spec.act, Act::Relu) {
            a.emit(Instr::PMax {
                rd: acc,
                rs1: acc,
                rs2: Reg::ZERO,
            });
        }
        a.emit(Instr::StorePostInc {
            op: StoreOp::Sb,
            rs2: acc,
            rs1: regs::OP,
            offset: 1,
        });
    }
}
