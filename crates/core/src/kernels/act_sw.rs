//! Requantization, saturation and activation emission.
//!
//! Two flavours exist for the transcendental activations:
//!
//! * levels **c–e**: the single-cycle `pl.tanh` / `pl.sig` instructions,
//! * levels **a–b**: a generated software routine implementing exactly
//!   Algorithm 2 with the same LUT values the hardware unit bakes in
//!   (staged into data memory by
//!   [`DataLayout::stage_pla_luts`](crate::DataLayout::stage_pla_luts)),
//!   so all levels remain bit-identical.

use super::{regs, KernelCtx};
use rnnasip_fixed::pla::SLOPE_FRAC_BITS;
use rnnasip_isa::{BranchOp, Reg};
use rnnasip_nn::Act;

/// Emits `li` of the PLA LUT base registers for `func` (levels a–b call
/// this once per loop, hoisting the constants out of the hot path).
pub fn emit_pla_hoist(ctx: &mut KernelCtx<'_>, func: ActFunc) {
    let (m_addr, q_addr) = match func {
        ActFunc::Tanh => (ctx.luts.0, ctx.luts.1),
        ActFunc::Sigmoid => (ctx.luts.2, ctx.luts.3),
    };
    ctx.asm.li(regs::LUT_M, m_addr as i32);
    ctx.asm.li(regs::LUT_Q, q_addr as i32);
}

/// Which transcendental the software routine computes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActFunc {
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// Emits the software PLA routine on the value in `v` (input: saturated
/// Q3.12 in an i32 register; output replaces `v`).
///
/// Clobbers `t0`, `t1`, `t2`, `gp`, `tp`; requires [`emit_pla_hoist`] to
/// have set `s6`/`s7` for the same function. Mirrors Algorithm 2:
///
/// 1. branch-free absolute value via the sign mask,
/// 2. interval index by right shift, bound check against `M = 32`,
/// 3. `y = (m·|x|) >> 14 + q` from the LUTs (or the converged `1.0`),
/// 4. symmetry fold (negate for tanh, `1 − y` for sigmoid).
pub fn emit_sw_pla(ctx: &mut KernelCtx<'_>, v: Reg, func: ActFunc) {
    assert!(
        ![regs::X0, regs::X1, regs::CNT, regs::WV0, regs::WV1].contains(&v),
        "software PLA clobbers its scratch registers; pick another value register"
    );
    let a = &mut *ctx.asm;
    let interp = a.new_label();
    let fold = a.new_label();

    // t0 = sign mask (-1 if negative); t1 = |x|.
    a.srai(regs::X0, v, 31);
    a.emit(rnnasip_isa::Instr::Op {
        op: rnnasip_isa::AluOp::Xor,
        rd: regs::X1,
        rs1: v,
        rs2: regs::X0,
    });
    a.sub(regs::X1, regs::X1, regs::X0);
    // t2 = interval index; converged when id >= 32.
    a.srai(regs::CNT, regs::X1, 9);
    a.li(regs::WV0, 32);
    a.branch(BranchOp::Bltu, regs::CNT, regs::WV0, interp);
    a.li(regs::X1, 4096); // f(+inf) = 1.0 in Q3.12
    a.j(fold);

    a.bind(interp);
    // Index the i16 LUTs: m = lut_m[id], q = lut_q[id].
    a.slli(regs::CNT, regs::CNT, 1);
    a.add(regs::WV0, regs::LUT_M, regs::CNT);
    a.lh(regs::WV0, 0, regs::WV0);
    a.add(regs::WV1, regs::LUT_Q, regs::CNT);
    a.lh(regs::WV1, 0, regs::WV1);
    // y = (m * |x|) >> 14 + q.
    a.mul(regs::X1, regs::WV0, regs::X1);
    a.srai(regs::X1, regs::X1, SLOPE_FRAC_BITS as i32);
    a.add(regs::X1, regs::X1, regs::WV1);

    a.bind(fold);
    // ±y via the sign mask.
    a.emit(rnnasip_isa::Instr::Op {
        op: rnnasip_isa::AluOp::Xor,
        rd: regs::X1,
        rs1: regs::X1,
        rs2: regs::X0,
    });
    a.sub(regs::X1, regs::X1, regs::X0);
    if matches!(func, ActFunc::Sigmoid) {
        // sig(-x) = 1 - sig(x): add 1.0 back for negative inputs.
        a.emit(rnnasip_isa::Instr::OpImm {
            op: rnnasip_isa::AluImmOp::Andi,
            rd: regs::X0,
            rs1: regs::X0,
            imm: 4096,
        });
        a.add(regs::X1, regs::X1, regs::X0);
    }
    a.mv(v, regs::X1);
}

/// Emits baseline (RV32IMC) saturation of `v` to the i16 range using the
/// hoisted `s8`/`s9` constants (see [`emit_sat_hoist_baseline`]).
pub fn emit_clamp16_baseline(ctx: &mut KernelCtx<'_>, v: Reg) {
    let a = &mut *ctx.asm;
    let ok_hi = a.new_label();
    let ok_lo = a.new_label();
    a.branch(BranchOp::Blt, v, regs::SAT_HI, ok_hi);
    a.mv(v, regs::SAT_HI);
    a.bind(ok_hi);
    a.branch(BranchOp::Bge, v, regs::SAT_LO, ok_lo);
    a.mv(v, regs::SAT_LO);
    a.bind(ok_lo);
}

/// Hoists the baseline saturation constants into `s8`/`s9`.
pub fn emit_sat_hoist_baseline(ctx: &mut KernelCtx<'_>) {
    ctx.asm.li(regs::SAT_HI, 32767);
    ctx.asm.li(regs::SAT_LO, -32768);
}

/// Emits requantization (`>> 12`, saturate) and activation of the value
/// in `v`, dispatching on the optimization level. Assumes the
/// level-appropriate hoists have been emitted.
pub fn emit_requant_act(ctx: &mut KernelCtx<'_>, v: Reg, act: Act) {
    ctx.asm.srai(v, v, 12);
    if ctx.level.has_xpulp() {
        ctx.asm.clip(v, v, 16);
    } else {
        emit_clamp16_baseline(ctx, v);
    }
    match act {
        Act::None => {}
        Act::Relu => {
            if ctx.level.has_xpulp() {
                ctx.asm.emit(rnnasip_isa::Instr::PMax {
                    rd: v,
                    rs1: v,
                    rs2: Reg::ZERO,
                });
            } else {
                let a = &mut *ctx.asm;
                let ok = a.new_label();
                a.branch(BranchOp::Bge, v, Reg::ZERO, ok);
                a.li(v, 0);
                a.bind(ok);
            }
        }
        Act::Tanh => {
            if ctx.level.has_act_ext() {
                ctx.asm.pl_tanh(v, v);
            } else {
                emit_sw_pla(ctx, v, ActFunc::Tanh);
            }
        }
        Act::Sigmoid => {
            if ctx.level.has_act_ext() {
                ctx.asm.pl_sig(v, v);
            } else {
                emit_sw_pla(ctx, v, ActFunc::Sigmoid);
            }
        }
    }
}

/// Hoists whatever constants [`emit_requant_act`] will need for this
/// level/activation combination (saturation bounds, LUT bases).
pub fn emit_requant_hoists(ctx: &mut KernelCtx<'_>, act: Act) {
    if !ctx.level.has_xpulp() {
        emit_sat_hoist_baseline(ctx);
    }
    if !ctx.level.has_act_ext() {
        match act {
            Act::Tanh => emit_pla_hoist(ctx, ActFunc::Tanh),
            Act::Sigmoid => emit_pla_hoist(ctx, ActFunc::Sigmoid),
            _ => {}
        }
    }
}
