//! CNN-layer kernels: im2col gather followed by a matrix-matrix product
//! expressed as one FC matvec per output pixel (Section II-A's `im2col`
//! lowering [25]).
//!
//! The gather is index-driven: the runner stages a table of byte offsets
//! (one per im2col element) into the *source* feature map, and the
//! generated code copies `src[idx[k]] → cols[k]`. From level b the copy
//! uses post-increment and register-offset loads in a software-pipelined
//! hardware loop (3 cycles/element); the baseline uses a scalar loop.
//! The MAC phase then loops over output pixels, each being one matvec
//! with the channel-major output stride.

use super::fc::emit_matvec;
use super::{regs, KernelCtx, MatvecSpec, PtrSrc};
use crate::error::CoreError;
use rnnasip_isa::{BranchOp, Instr, LoadOp, LoopIdx, Reg};
use rnnasip_nn::Act;

/// Addresses and shape of one staged convolution stage.
#[derive(Clone, Copy, Debug)]
pub struct ConvSpec {
    /// Filter matrix base: `out_ch × taps` halfwords (taps padded even).
    pub w_base: u32,
    /// Pre-shifted bias base (`out_ch` words).
    pub bias32: u32,
    /// Source feature map base (previous stage's output or the staged
    /// input image).
    pub src: u32,
    /// Gather index table: `n_pix · taps` u16 byte offsets into the
    /// source (plus one slack entry).
    pub idx_base: u32,
    /// im2col buffer: `n_pix × taps` halfwords, pixel-major.
    pub cols_base: u32,
    /// Output base, channel-major (`out_ch × n_pix` halfwords).
    pub out_base: u32,
    /// Global cells: current pixel-column pointer, current output
    /// pointer, remaining pixel count.
    pub g_pix: u32,
    /// Current output pointer global.
    pub g_out: u32,
    /// Remaining pixel count global.
    pub g_cnt: u32,
    /// Output pixels per channel.
    pub n_pix: usize,
    /// Filter taps per output (padded even).
    pub taps: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Activation.
    pub act: Act,
    /// Baseline spill scratch.
    pub scratch: u32,
}

/// Emits a complete convolution stage (gather + per-pixel matvecs).
///
/// # Errors
///
/// [`CoreError::Shape`] for empty or odd-tap shapes.
pub fn emit_conv(ctx: &mut KernelCtx<'_>, spec: &ConvSpec) -> Result<(), CoreError> {
    spec.validate()?;
    emit_gather_range(ctx, spec, 0, spec.n_pix);
    emit_pixel_loop_range(ctx, spec, 0, spec.n_pix)
}

impl ConvSpec {
    /// Bytes between consecutive output channels of one pixel.
    fn out_stride(&self) -> i32 {
        2 * self.n_pix as i32
    }

    /// Shape checks shared by the whole-stage and sliced emitters.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n_pix == 0 || self.taps == 0 || self.out_ch == 0 {
            return Err(CoreError::Shape("empty convolution stage".into()));
        }
        if !self.taps.is_multiple_of(2) {
            return Err(CoreError::Shape(format!(
                "convolution taps must be padded even, got {}",
                self.taps
            )));
        }
        if self.out_stride() >= 2048 {
            return Err(CoreError::Shape(format!(
                "output stride {} exceeds the post-increment immediate",
                self.out_stride()
            )));
        }
        Ok(())
    }
}

/// Emits the im2col gather for output pixels `[pix0, pix0+pixels)`:
/// `cols[k] = src[idx[k]]`.
///
/// Pixels are independent, so a slice only offsets the index cursor and
/// destination; the full range reproduces the single-core gather
/// exactly. (The software-pipelined variant pre-loads one offset past
/// the slice: for an interior slice that is the next slice's first
/// entry, for the last it is the table's slack entry — either way a
/// staged, in-bounds halfword.)
pub fn emit_gather_range(ctx: &mut KernelCtx<'_>, spec: &ConvSpec, pix0: usize, pixels: usize) {
    let total = pixels * spec.taps;
    let skip = (2 * pix0 * spec.taps) as u32;
    let a = &mut *ctx.asm;
    a.li(Reg::A0, (spec.idx_base + skip) as i32); // offset cursor
    a.li(Reg::A1, spec.src as i32); // source base
    a.li(Reg::A2, (spec.cols_base + skip) as i32); // destination cursor
    if ctx.level.has_xpulp() {
        // Software-pipelined: the offset for iteration i is loaded during
        // iteration i-1, so neither load stalls.
        a.lh_post(regs::WV0, 2, Reg::A0); // offset 0
        a.li(regs::CNT, total as i32);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, regs::CNT, end);
        a.emit(Instr::LoadReg {
            op: LoadOp::Lh,
            rd: regs::WV1,
            rs1: Reg::A1,
            rs2: regs::WV0,
        });
        a.lh_post(regs::WV0, 2, Reg::A0); // next offset
        a.sh_post(regs::WV1, 2, Reg::A2);
        a.bind(end);
    } else {
        // end bound = cursor start + 2*total (may exceed addi range).
        a.li(regs::XEND, (spec.idx_base + skip + 2 * total as u32) as i32);
        let top = a.new_label();
        a.bind(top);
        a.lh(regs::WV0, 0, Reg::A0);
        a.add(regs::WV1, Reg::A1, regs::WV0);
        a.lh(regs::WV1, 0, regs::WV1);
        a.sh(regs::WV1, 0, Reg::A2);
        a.addi(Reg::A0, Reg::A0, 2);
        a.addi(Reg::A2, Reg::A2, 2);
        a.branch(BranchOp::Bltu, Reg::A0, regs::XEND, top);
    }
}

/// Emits the per-pixel matvec loop over output pixels
/// `[pix0, pix0+pixels)`.
///
/// The output stride stays the *whole* stage's `2·n_pix` (the
/// channel-major layout is global), only the loop bounds and start
/// pointers are sliced. A sliced emission must point `g_pix`/`g_out`/
/// `g_cnt` at per-core cells, since the loop mutates them.
pub fn emit_pixel_loop_range(
    ctx: &mut KernelCtx<'_>,
    spec: &ConvSpec,
    pix0: usize,
    pixels: usize,
) -> Result<(), CoreError> {
    // Initialise the pixel globals.
    {
        let a = &mut *ctx.asm;
        a.li(
            regs::X0,
            (spec.cols_base + (2 * pix0 * spec.taps) as u32) as i32,
        );
        a.li(regs::WV1, spec.g_pix as i32);
        a.sw(regs::X0, 0, regs::WV1);
        a.li(regs::X0, (spec.out_base + (2 * pix0) as u32) as i32);
        a.li(regs::WV1, spec.g_out as i32);
        a.sw(regs::X0, 0, regs::WV1);
        a.li(regs::X0, pixels as i32);
        a.li(regs::WV1, spec.g_cnt as i32);
        a.sw(regs::X0, 0, regs::WV1);
    }
    let pix_top = ctx.asm.new_label();
    ctx.asm.bind(pix_top);

    emit_matvec(
        ctx,
        &MatvecSpec {
            w_base: spec.w_base,
            bias32: spec.bias32,
            x: PtrSrc::Global(spec.g_pix),
            out: PtrSrc::Global(spec.g_out),
            out_stride: spec.out_stride(),
            n_in: spec.taps,
            n_out: spec.out_ch,
            act: spec.act,
            scratch: spec.scratch,
        },
    )?;

    // Advance the pixel globals.
    let a = &mut *ctx.asm;
    let col_bytes = 2 * spec.taps as i32;
    a.li(regs::WV1, spec.g_pix as i32);
    a.lw(regs::X0, 0, regs::WV1);
    if col_bytes < 2048 {
        a.addi(regs::X0, regs::X0, col_bytes);
    } else {
        a.li(regs::X1, col_bytes);
        a.add(regs::X0, regs::X0, regs::X1);
    }
    a.sw(regs::X0, 0, regs::WV1);
    a.li(regs::WV1, spec.g_out as i32);
    a.lw(regs::X0, 0, regs::WV1);
    a.addi(regs::X0, regs::X0, 2);
    a.sw(regs::X0, 0, regs::WV1);
    a.li(regs::WV1, spec.g_cnt as i32);
    a.lw(regs::X0, 0, regs::WV1);
    a.addi(regs::X0, regs::X0, -1);
    a.sw(regs::X0, 0, regs::WV1);
    // Inverted branch over a jal: the unrolled matvec body can exceed
    // the conditional-branch range.
    let done = a.new_label();
    a.branch(BranchOp::Beq, regs::X0, Reg::ZERO, done);
    a.j(pix_top);
    a.bind(done);
    Ok(())
}
