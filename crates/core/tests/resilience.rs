//! Self-healing engine coverage: eager auto-rewind after failed runs,
//! the rewind → rebuild → degrade recovery ladder, and the structured
//! attempt history a fault campaign consumes.

use rnnasip_core::{
    CoreError, Fault, FaultPlan, FaultSite, KernelBackend, OptLevel, RecoveryAction,
    ResilientEngine, RetryPolicy, SdcVerdict, SimError, DEFAULT_WATCHDOG_CYCLES,
};
use rnnasip_fixed::Q3p12;
use rnnasip_isa::Reg;

fn policy_net() -> (rnnasip_nn::Network, Vec<Vec<Q3p12>>) {
    let net = rnnasip_rrm::suite().remove(3); // eisen2019: smallest MLP
    let input = net.input();
    (net.network, input)
}

/// Satellite regression: a faulted run must leave the engine
/// bit-identical to fresh — same outputs *and* same cycle counts on the
/// very next run, with no explicit recovery call.
#[test]
fn engine_auto_rewinds_after_sim_error() {
    let (net, input) = policy_net();
    let compiled = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net)
        .unwrap();
    let fresh = compiled.engine().run(&input).unwrap();

    let mut engine = compiled.engine();
    // A register flip mid-run plus a tiny forced watchdog: the run dies,
    // having dirtied memory and left core state mid-kernel.
    engine.inject_faults(
        &FaultPlan::new()
            .with_fault(Fault {
                at_instret: 5,
                site: FaultSite::RegBit {
                    reg: Reg::A0,
                    bit: 31,
                },
            })
            .with_watchdog(50),
    );
    let err = engine.run(&input).unwrap_err();
    assert!(matches!(
        err,
        CoreError::Sim(SimError::Watchdog { max_cycles: 50 })
    ));
    assert_eq!(
        engine.last_fault_log().len(),
        1,
        "the applied fault stays readable after the heal"
    );

    // No explicit heal: the next plain run must match the fresh path.
    let healed = engine.run(&input).unwrap();
    assert_eq!(healed.outputs, fresh.outputs);
    assert_eq!(healed.report.cycles(), fresh.report.cycles());
    assert!(engine.last_fault_log().is_empty(), "plan was one-shot");
}

#[test]
fn default_watchdog_is_plumbed_into_compiled_artifacts() {
    let (net, _) = policy_net();
    let compiled = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net)
        .unwrap();
    assert_eq!(compiled.max_cycles(), DEFAULT_WATCHDOG_CYCLES);
    let tight = KernelBackend::new(OptLevel::IfmTile)
        .with_max_cycles(123)
        .compile_network(&net)
        .unwrap();
    assert_eq!(tight.max_cycles(), 123);
}

#[test]
fn run_budgeted_overrides_one_run_only() {
    let (net, input) = policy_net();
    let mut engine = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net)
        .unwrap()
        .engine();
    let free = engine.run(&input).unwrap();
    // One simulated cycle is never enough for a whole inference.
    let err = engine.run_budgeted(&input, 1).unwrap_err();
    assert!(matches!(
        err,
        CoreError::Sim(SimError::Watchdog { max_cycles: 1 })
    ));
    // The override does not stick.
    let after = engine.run(&input).unwrap();
    assert_eq!(after.outputs, free.outputs);
    assert_eq!(after.report.cycles(), free.report.cycles());
}

#[test]
fn watchdog_hang_recovers_on_the_rewind_rung() {
    let (net, input) = policy_net();
    let mut engine = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile)).unwrap();
    let golden = engine.run(&input);
    assert_eq!(golden.attempts.len(), 1);
    assert_eq!(golden.attempts[0].action, RecoveryAction::FirstTry);
    assert!(!golden.recovered());
    let golden_run = golden.result.unwrap();

    engine.inject_faults(&FaultPlan::new().with_watchdog(25));
    let outcome = engine.run(&input);
    assert!(outcome.recovered());
    assert_eq!(outcome.level, OptLevel::IfmTile, "no degradation needed");
    let actions: Vec<_> = outcome.attempts.iter().map(|a| a.action).collect();
    assert_eq!(actions, [RecoveryAction::FirstTry, RecoveryAction::Rewind]);
    assert_eq!(
        outcome.attempts[0].error,
        Some(SimError::Watchdog { max_cycles: 25 })
    );
    assert_eq!(outcome.attempts[1].error, None);
    let run = outcome.result.unwrap();
    assert_eq!(run.outputs, golden_run.outputs);
    assert_eq!(run.report.cycles(), golden_run.report.cycles());
}

#[test]
fn instruction_corruption_needs_the_rebuild_rung() {
    let (net, input) = policy_net();
    let mut engine = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile)).unwrap();
    let golden = engine.run(&input).result.unwrap();

    // Flipping bit 0 of any 4-byte instruction changes its width class
    // (the `11` marker becomes a compressed quadrant), so the slot turns
    // into a permanent fetch fault that survives rewinds — only the
    // rebuild rung reloads the pristine program.
    let victim = engine
        .engine()
        .compiled()
        .program()
        .iter()
        .find(|item| item.size == 4)
        .map(|item| item.addr)
        .expect("compiled kernels contain 4-byte instructions");
    engine.inject_faults(&FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::InstrBit { pc: victim, bit: 0 },
    }));
    let outcome = engine.run(&input);
    assert!(outcome.recovered());
    let actions: Vec<_> = outcome.attempts.iter().map(|a| a.action).collect();
    assert_eq!(
        actions,
        [
            RecoveryAction::FirstTry,
            RecoveryAction::Rewind,
            RecoveryAction::Rebuild,
        ]
    );
    for failed in &outcome.attempts[..2] {
        assert_eq!(failed.error, Some(SimError::FetchFault { pc: victim }));
    }
    // The log is per-run, so after the clean rebuild attempt it is empty
    // again — the one-shot stash is covered by the engine-level test.
    assert!(engine.engine().last_fault_log().is_empty());
    let run = outcome.result.unwrap();
    assert_eq!(run.outputs, golden.outputs);
    assert_eq!(run.report.cycles(), golden.report.cycles());
}

#[test]
fn degradation_is_the_last_rung_and_stays_bit_exact() {
    let (net, input) = policy_net();
    // Rewind and rebuild disabled: the only way out is down the ladder.
    let policy = RetryPolicy::new().with_max_rewinds(0).with_rebuild(false);
    let mut engine =
        ResilientEngine::with_policy(&net, KernelBackend::new(OptLevel::IfmTile), policy).unwrap();
    let golden = engine.run(&input).result.unwrap();

    engine.inject_faults(&FaultPlan::new().with_watchdog(25));
    let outcome = engine.run(&input);
    assert!(outcome.recovered());
    assert_eq!(outcome.level, OptLevel::SdotSp, "one rung down");
    let actions: Vec<_> = outcome.attempts.iter().map(|a| a.action).collect();
    assert_eq!(actions, [RecoveryAction::FirstTry, RecoveryAction::Degrade]);
    let run = outcome.result.unwrap();
    assert_eq!(run.outputs, golden.outputs, "all levels are bit-exact");
    assert!(
        run.report.cycles() > golden.report.cycles(),
        "the degraded level pays in cycles"
    );

    // Degradation is sticky until explicitly restored.
    assert_eq!(engine.level(), OptLevel::SdotSp);
    engine.restore_level().unwrap();
    assert_eq!(engine.level(), OptLevel::IfmTile);
    let restored = engine.run(&input).result.unwrap();
    assert_eq!(restored.report.cycles(), golden.report.cycles());
}

#[test]
fn exhausted_ladder_reports_the_final_error() {
    let (net, input) = policy_net();
    let policy = RetryPolicy::new()
        .with_max_rewinds(0)
        .with_rebuild(false)
        .with_degrade(false);
    let mut engine =
        ResilientEngine::with_policy(&net, KernelBackend::new(OptLevel::Baseline), policy).unwrap();
    engine.inject_faults(&FaultPlan::new().with_watchdog(25));
    let outcome = engine.run(&input);
    assert!(!outcome.recovered());
    assert_eq!(outcome.attempts.len(), 1);
    assert!(matches!(
        outcome.result,
        Err(CoreError::Sim(SimError::Watchdog { max_cycles: 25 }))
    ));
}

#[test]
fn shape_errors_are_not_retried() {
    let (net, _) = policy_net();
    let mut engine = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile)).unwrap();
    let outcome = engine.run(&[]);
    assert_eq!(outcome.attempts.len(), 1, "deterministic errors abort");
    assert!(matches!(outcome.result, Err(CoreError::Shape(_))));
}

#[test]
fn reference_policy_matches_the_uop_path_through_recovery() {
    let (net, input) = policy_net();
    let mut uop = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile)).unwrap();
    let mut legacy = ResilientEngine::with_policy(
        &net,
        KernelBackend::new(OptLevel::IfmTile),
        RetryPolicy::new().with_reference(true),
    )
    .unwrap();
    let plan = FaultPlan::new()
        .with_fault(Fault {
            at_instret: 40,
            site: FaultSite::RegBit {
                reg: Reg::A3,
                bit: 7,
            },
        })
        .with_watchdog(30);
    uop.inject_faults(&plan);
    legacy.inject_faults(&plan);
    let a = uop.run(&input);
    let b = legacy.run(&input);
    assert_eq!(a.attempts, b.attempts);
    let (ra, rb) = (a.result.unwrap(), b.result.unwrap());
    assert_eq!(ra.outputs, rb.outputs);
    assert_eq!(ra.report.cycles(), rb.report.cycles());
}

/// A *tracked* memory flip corrupts a bias word the guards watch: the
/// run succeeds but trips, the verify re-run starts from rewound
/// (clean) memory, and the verdict is `Transient`.
#[test]
fn tracked_sdc_heals_on_the_verify_rung() {
    let (net, input) = policy_net();
    let mut engine = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile)).unwrap();
    engine.set_guards(true);
    let golden = engine.run(&input);
    assert!(!golden.sdc_detected());
    let golden_run = golden.result.unwrap();
    assert!(golden_run.report.guard().is_some(), "guards are armed");

    let bias = engine.engine().compiled().guards()[0].region.bias32;
    engine.inject_faults(&FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: bias,
            bit: 4,
            silent: false,
        },
    }));
    let outcome = engine.run(&input);
    let actions: Vec<_> = outcome.attempts.iter().map(|a| a.action).collect();
    assert_eq!(actions, [RecoveryAction::FirstTry, RecoveryAction::Verify]);
    assert!(outcome.attempts[0].guard_failed);
    assert_eq!(outcome.attempts[0].guard_region, Some(0));
    assert_eq!(outcome.attempts[1].verdict, Some(SdcVerdict::Transient));
    assert!(outcome.sdc_detected());
    assert!(outcome.sdc_healed());
    let run = outcome.result.unwrap();
    assert_eq!(run.outputs, golden_run.outputs);
    assert_eq!(run.report.cycles(), golden_run.report.cycles());
}

/// A *silent* flip of the same word survives the verify re-run's rewind
/// (`Sticky`) and needs the rebuild rung to clear.
#[test]
fn silent_sdc_is_sticky_and_needs_the_rebuild_rung() {
    let (net, input) = policy_net();
    let mut engine = ResilientEngine::new(&net, KernelBackend::new(OptLevel::IfmTile)).unwrap();
    engine.set_guards(true);
    let golden = engine.run(&input).result.unwrap();

    let bias = engine.engine().compiled().guards()[0].region.bias32;
    engine.inject_faults(&FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: bias,
            bit: 4,
            silent: true,
        },
    }));
    let outcome = engine.run(&input);
    let actions: Vec<_> = outcome.attempts.iter().map(|a| a.action).collect();
    assert_eq!(
        actions,
        [
            RecoveryAction::FirstTry,
            RecoveryAction::Verify,
            RecoveryAction::Rebuild,
        ]
    );
    assert_eq!(outcome.attempts[1].verdict, Some(SdcVerdict::Sticky));
    assert!(outcome.attempts[1].guard_failed);
    assert!(!outcome.attempts[2].guard_failed, "rebuild cleared it");
    assert!(outcome.sdc_healed());
    let run = outcome.result.unwrap();
    assert_eq!(run.outputs, golden.outputs);
    assert_eq!(run.report.cycles(), golden.report.cycles());
}

/// With every containment rung off-policy, a flagged run is surfaced
/// as-is: detection stands in the attempt history, outputs are suspect.
#[test]
fn exhausted_ladder_surfaces_the_flagged_run() {
    let (net, input) = policy_net();
    let policy = RetryPolicy::new()
        .with_max_verifies(0)
        .with_rebuild(false)
        .with_degrade(false);
    let mut engine =
        ResilientEngine::with_policy(&net, KernelBackend::new(OptLevel::IfmTile), policy).unwrap();
    engine.set_guards(true);
    let bias = engine.engine().compiled().guards()[0].region.bias32;
    engine.inject_faults(&FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: bias,
            bit: 4,
            silent: true,
        },
    }));
    let outcome = engine.run(&input);
    assert_eq!(outcome.attempts.len(), 1);
    assert!(outcome.sdc_detected());
    assert!(!outcome.sdc_healed());
    assert!(outcome.result.is_ok(), "the run itself completed");
    assert!(outcome.result.unwrap().report.guard_failed());
}

/// `Display` coverage for every `CoreError` variant (the sim-level
/// `SimError` twin lives in `rnnasip-sim`'s tests).
#[test]
fn core_error_display_covers_every_variant() {
    let cases: Vec<(CoreError, &str)> = vec![
        (
            CoreError::Sim(SimError::Watchdog { max_cycles: 9 }),
            "simulation failed: watchdog expired after 9 cycles",
        ),
        (
            CoreError::Shape("bad".into()),
            "unsupported layer shape: bad",
        ),
        (
            CoreError::Unsupported("topo".into()),
            "unsupported network topology: topo",
        ),
        (
            CoreError::OutOfMemory {
                needed: 10,
                capacity: 4,
            },
            "data layout needs 10 bytes, TCDM has 4",
        ),
    ];
    for (err, expected) in cases {
        assert_eq!(err.to_string(), expected);
    }
    // The Asm variant wraps the assembler's own message.
    let wrapped = CoreError::from(rnnasip_asm::AsmError::UnboundLabel { name: "L7".into() });
    assert_eq!(wrapped.to_string(), "assembly failed: unbound label `L7`");
}
