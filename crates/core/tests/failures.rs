//! Failure injection: the harness must fail loudly and precisely, never
//! silently produce wrong numbers.

use rnnasip_core::{CoreError, KernelBackend, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, FcLayer, Matrix};
use rnnasip_rrm::{seeded_fc_layer, seeded_input};

#[test]
fn wrong_input_length_is_a_shape_error() {
    let layer = seeded_fc_layer(8, 4, 1);
    let err = KernelBackend::new(OptLevel::IfmTile)
        .run_fc(&layer, &[Q3p12::ZERO; 3])
        .unwrap_err();
    assert!(matches!(err, CoreError::Shape(_)), "{err}");
}

#[test]
fn tiny_memory_reports_out_of_memory() {
    let layer = seeded_fc_layer(64, 64, 2);
    let input = seeded_input(64, 3);
    let err = KernelBackend::new(OptLevel::IfmTile)
        .with_memory(0x10000 + 512) // data region: 512 bytes
        .run_fc(&layer, &input)
        .unwrap_err();
    assert!(matches!(err, CoreError::OutOfMemory { .. }), "{err}");
}

#[test]
fn exhausted_watchdog_reports_sim_error() {
    let layer = seeded_fc_layer(64, 64, 2);
    let input = seeded_input(64, 3);
    let err = KernelBackend::new(OptLevel::Baseline)
        .with_max_cycles(100)
        .run_fc(&layer, &input)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Sim(rnnasip_sim::SimError::Watchdog { .. })),
        "{err}"
    );
}

#[test]
fn odd_lstm_width_is_rejected_with_context() {
    use rnnasip_nn::LstmLayer;
    let m = 3; // odd input width: unsupported
    let n = 4;
    let z_nm = Matrix::zeros(n, m);
    let z_nn = Matrix::zeros(n, n);
    let layer = LstmLayer::new(
        [z_nm.clone(), z_nm.clone(), z_nm.clone(), z_nm],
        [z_nn.clone(), z_nn.clone(), z_nn.clone(), z_nn],
        [
            vec![Q3p12::ZERO; n],
            vec![Q3p12::ZERO; n],
            vec![Q3p12::ZERO; n],
            vec![Q3p12::ZERO; n],
        ],
    );
    let seq = vec![vec![Q3p12::ZERO; m]; 2];
    let err = KernelBackend::new(OptLevel::IfmTile)
        .run_lstm(&layer, &seq)
        .unwrap_err();
    match err {
        CoreError::Shape(msg) => assert!(msg.contains("even"), "{msg}"),
        other => panic!("expected shape error, got {other}"),
    }
}

#[test]
fn empty_layer_rejected() {
    // A zero-output layer cannot be constructed through FcLayer (its
    // Matrix would be empty but valid); the kernel must reject it.
    let layer = FcLayer::new(Matrix::zeros(0, 4), vec![], Act::None);
    let err = KernelBackend::new(OptLevel::Xpulp)
        .run_fc(&layer, &[Q3p12::ZERO; 4])
        .unwrap_err();
    assert!(matches!(err, CoreError::Shape(_)), "{err}");
}

#[test]
fn compile_fc_exposes_code_size_tradeoff() {
    let layer = seeded_fc_layer(64, 60, 5);
    let base = KernelBackend::new(OptLevel::Baseline)
        .compile_fc(&layer)
        .expect("compiles");
    let tiled = KernelBackend::new(OptLevel::IfmTile)
        .compile_fc(&layer)
        .expect("compiles");
    // The baseline is a compact loop; the tiled kernel unrolls per-tile
    // code (pointer setup + requant per output).
    assert!(
        tiled.code_size() > 2 * base.code_size(),
        "tiled {} vs baseline {}",
        tiled.code_size(),
        base.code_size()
    );
    // Both end with the halt.
    let last = |p: &rnnasip_sim::Program| p.iter().last().map(|i| i.instr);
    assert_eq!(last(&base), Some(rnnasip_isa::Instr::Ecall));
    assert_eq!(last(&tiled), Some(rnnasip_isa::Instr::Ecall));
}
