//! ABFT guard coverage: clean suite runs never trip a guard and stay
//! bit-identical to unguarded runs; seeded single-bit flips into guarded
//! TCDM weight/bias/activation words are detected whenever they corrupt
//! an output (ISSUE 9, "SDC guards").

use rnnasip_core::{
    CompiledNetwork, Fault, FaultPlan, FaultSite, KernelBackend, OptLevel, ShortcutPtr,
};
use rnnasip_rng::StdRng;

fn uniform(rng: &mut StdRng, n: u64) -> u64 {
    rng.next_u64() % n.max(1)
}

fn cell_seed(net: usize, level: OptLevel) -> u64 {
    0x5DC0_17A9 ^ ((net as u64) << 8) ^ ((level.tag().as_bytes()[0] as u64) << 16)
}

/// Byte ranges whose single-bit flips a guarded run *must* detect when
/// they corrupt an output: every guarded region's weight matrix and
/// bias vector, plus the input window when some region reads it
/// directly (FC chains; LSTM xh staging and conv im2col gathers read
/// derived buffers the monitor does not ledger).
fn must_detect_ranges(compiled: &CompiledNetwork) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let input = compiled.input();
    let in_bytes = (2 * input.width() * input.steps()) as u32;
    let mut input_covered = false;
    for spec in compiled.guards().iter() {
        let r = &spec.region;
        ranges.push((r.w_base, 2 * r.n_in * r.n_out));
        ranges.push((r.bias32, 4 * r.n_out));
        if let ShortcutPtr::Const(x) = r.x {
            if x < input.base() + in_bytes && input.base() < x + 2 * r.n_in {
                input_covered = true;
            }
        }
    }
    if input_covered {
        ranges.push((input.base(), in_bytes));
    }
    ranges
}

#[test]
fn guarded_clean_suite_is_bit_identical_and_never_trips() {
    for bench in rnnasip_rrm::suite() {
        let input = bench.input();
        for level in OptLevel::ALL {
            let compiled = KernelBackend::new(level)
                .compile_network(&bench.network)
                .unwrap();
            let golden = compiled.engine().run(&input).unwrap();

            let mut engine = compiled.engine();
            engine.set_guards(true);
            let run = engine.run(&input).unwrap();
            let tag = format!("{} level {}", bench.tag, level.tag());
            assert_eq!(run.outputs, golden.outputs, "outputs drift: {tag}");
            assert_eq!(run.report.cycles(), golden.report.cycles(), "cycles: {tag}");
            assert_eq!(
                run.report.instrs(),
                golden.report.instrs(),
                "instret: {tag}"
            );
            assert_eq!(
                run.report.stats().to_csv(),
                golden.report.stats().to_csv(),
                "per-mnemonic rows: {tag}"
            );
            assert!(golden.report.guard().is_none());

            let guard = run.report.guard().expect("guarded run carries a report");
            assert!(!guard.failed(), "clean run tripped a guard: {tag}");
            assert!(!engine.last_guard_failed());
            assert_eq!(guard.regions.len(), compiled.guards().len());
            if !compiled.guards().is_empty() {
                assert!(guard.entries() > 0, "no guarded entries: {tag}");
                assert!(guard.guard_cycles > 0, "no surcharge: {tag}");
            }

            // Reruns are deterministic, including the guard verdicts.
            let again = engine.run(&input).unwrap();
            assert_eq!(again.outputs, run.outputs);
            assert_eq!(again.report.guard(), Some(guard), "guard drift: {tag}");
        }
    }
}

#[test]
fn guard_accounting_is_tier_identical() {
    // The analytic surcharge and entry counts must not depend on which
    // execution tier ran the kernel: shortcut-enabled vs plain micro-op
    // artifacts produce byte-equal guard reports.
    for net in [0usize, 3, 6] {
        let bench = rnnasip_rrm::suite().remove(net);
        let input = bench.input();
        for level in [OptLevel::Baseline, OptLevel::IfmTile] {
            let compiled = KernelBackend::new(level)
                .compile_network(&bench.network)
                .unwrap();
            let mut fast = compiled.engine();
            fast.set_guards(true);
            let a = fast.run(&input).unwrap();
            let mut plain = compiled.without_shortcuts().engine();
            plain.set_guards(true);
            let b = plain.run(&input).unwrap();
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(
                a.report.guard(),
                b.report.guard(),
                "{} level {}: tiers disagree",
                bench.tag,
                level.tag()
            );
        }
    }
}

#[test]
fn corrupting_flips_in_guarded_words_are_detected() {
    let mut escapes: Vec<String> = Vec::new();
    let mut corrupting = 0u32;
    for (ni, bench) in rnnasip_rrm::suite().iter().enumerate() {
        let input = bench.input();
        for level in OptLevel::ALL {
            let compiled = KernelBackend::new(level)
                .compile_network(&bench.network)
                .unwrap();
            let ranges = must_detect_ranges(&compiled);
            if ranges.is_empty() {
                continue;
            }
            let mut engine = compiled.engine();
            engine.set_guards(true);
            let golden = engine.run(&input).unwrap();
            let mut rng = StdRng::seed_from_u64(cell_seed(ni, level));
            for _ in 0..4 {
                let (base, len) = ranges[uniform(&mut rng, ranges.len() as u64) as usize];
                let addr = base + uniform(&mut rng, u64::from(len)) as u32;
                let bit = uniform(&mut rng, 8) as u32;
                // Silent flips evade the dirty-block bitmap, so nothing
                // but the guard can notice them.
                engine.inject_faults(&FaultPlan::new().with_fault(Fault {
                    at_instret: 0,
                    site: FaultSite::MemBit {
                        addr,
                        bit,
                        silent: true,
                    },
                }));
                if let Ok(run) = engine.run(&input) {
                    if run.outputs != golden.outputs {
                        corrupting += 1;
                        if !run.report.guard_failed() {
                            escapes.push(format!(
                                "{} level {}: flip 0x{addr:08x}.{bit} escaped",
                                bench.tag,
                                level.tag()
                            ));
                        } else {
                            assert!(engine.last_guard_failed());
                        }
                    }
                }
                // The silent corruption survives rewinds by design; only
                // a rebuild restores a clean TCDM for the next trial.
                engine.heal_rebuild();
            }
        }
    }
    assert!(escapes.is_empty(), "undetected SDC: {escapes:#?}");
    assert!(corrupting > 0, "sweep never corrupted an output");
}
