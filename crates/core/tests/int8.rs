//! INT8 extension path: bit-exactness of both `pv.sdotsp.b` and
//! `pl.sdotsp.b` kernels against the Q1.6 golden model, and the expected
//! throughput ordering (INT8 merged load-compute beats everything).

use rnnasip_core::{Int8Kernel, KernelBackend, OptLevel};
use rnnasip_fixed::Q1p6;
use rnnasip_nn::{Act, FcLayer8};
use rnnasip_rng::StdRng;

fn rand_layer8(rng: &mut StdRng, n_out: usize, n_in: usize, act: Act) -> FcLayer8 {
    let weights = (0..n_out * n_in)
        .map(|_| Q1p6::from_f64(rng.gen::<f64>() - 0.5))
        .collect();
    let bias = (0..n_out)
        .map(|_| Q1p6::from_f64((rng.gen::<f64>() - 0.5) * 0.5))
        .collect();
    FcLayer8::new(n_out, n_in, weights, bias, act)
}

fn rand_input8(rng: &mut StdRng, n: usize) -> Vec<Q1p6> {
    (0..n)
        .map(|_| Q1p6::from_f64((rng.gen::<f64>() - 0.5) * 2.0))
        .collect()
}

#[test]
fn int8_kernels_bit_exact() {
    let mut rng = StdRng::seed_from_u64(88);
    // Shapes include non-multiples of 4 (padding path) and remainder
    // tiles.
    for (n_out, n_in) in [(4usize, 8usize), (10, 16), (11, 18), (3, 7), (25, 20)] {
        for act in [Act::None, Act::Relu] {
            let layer = rand_layer8(&mut rng, n_out, n_in, act);
            let input = rand_input8(&mut rng, n_in);
            let expect = layer.forward_fixed(&input);
            for kernel in [Int8Kernel::PvSdot, Int8Kernel::PlSdotB] {
                let run = KernelBackend::new(OptLevel::IfmTile)
                    .run_fc8(&layer, &input, kernel)
                    .unwrap_or_else(|e| panic!("{kernel:?} {n_out}x{n_in}: {e}"));
                assert_eq!(
                    run.outputs, expect,
                    "{kernel:?}, shape {n_out}x{n_in}, act {act:?}"
                );
            }
        }
    }
}

#[test]
fn int8_saturating_accumulation_bit_exact() {
    let layer = FcLayer8::new(2, 8, vec![Q1p6::MAX; 16], vec![Q1p6::MAX; 2], Act::None);
    let input = vec![Q1p6::MAX; 8];
    let expect = layer.forward_fixed(&input);
    assert_eq!(expect[0], Q1p6::MAX, "precondition: saturates");
    for kernel in [Int8Kernel::PvSdot, Int8Kernel::PlSdotB] {
        let run = KernelBackend::new(OptLevel::IfmTile)
            .run_fc8(&layer, &input, kernel)
            .expect("runs");
        assert_eq!(run.outputs, expect, "{kernel:?}");
    }
}

#[test]
fn int8_merged_load_compute_beats_16bit_and_explicit_loads() {
    // Same logical layer at Q3.12 (level e) vs INT8 pv.sdotsp.b vs INT8
    // pl.sdotsp.b: MACs/cycle must strictly improve.
    let mut rng = StdRng::seed_from_u64(5);
    let n_out = 64;
    let n_in = 64;
    let layer8 = rand_layer8(&mut rng, n_out, n_in, Act::Relu);
    let input8 = rand_input8(&mut rng, n_in);

    let pv = KernelBackend::new(OptLevel::IfmTile)
        .run_fc8(&layer8, &input8, Int8Kernel::PvSdot)
        .expect("pv kernel");
    let pl = KernelBackend::new(OptLevel::IfmTile)
        .run_fc8(&layer8, &input8, Int8Kernel::PlSdotB)
        .expect("pl kernel");

    // 16-bit reference of the same shape on the best 16-bit level.
    let layer16 = rnnasip_rrm::seeded_fc_layer(n_in, n_out, 9);
    let input16 = rnnasip_rrm::seeded_input(n_in, 10);
    let q16 = KernelBackend::new(OptLevel::IfmTile)
        .run_fc(&layer16, &input16)
        .expect("16-bit");

    let cpm = |r: &rnnasip_core::RunReport| r.cycles() as f64 / r.mac_ops() as f64;
    let c16 = cpm(&q16.report);
    let c_pv = cpm(&pv.report);
    let c_pl = cpm(&pl.report);
    assert!(
        c_pv < c16,
        "int8 pv.sdotsp.b ({c_pv:.3}) must beat 16-bit ({c16:.3}) cycles/MAC"
    );
    assert!(
        c_pl < c_pv,
        "pl.sdotsp.b ({c_pl:.3}) must beat explicit loads ({c_pv:.3})"
    );
    // The byte datapath peaks at 4 MACs/cycle steady-state; on this
    // modest layer (tile setup + requant overheads included) it must
    // still clear 2.2 — well beyond the 16-bit peak of 2.
    assert!(
        1.0 / c_pl > 2.2,
        "merged INT8 reaches {:.2} MACs/cycle",
        1.0 / c_pl
    );
}
