//! Tentpole acceptance tests for the serving layer: pooled execution is
//! bit-identical to the serial engine path at every worker count and
//! submission order, and a fault-injected request heals in place without
//! failing its batch.

use rnnasip_core::serve::{Arrival, BatchRequest, EnginePool, Front, FrontConfig};
use rnnasip_core::{
    Fault, FaultPlan, FaultSite, KernelBackend, NetworkRun, OptLevel, RecoveryAction, RunReport,
};
use rnnasip_nn::Network;
use rnnasip_rng::StdRng;
use std::sync::Arc;

/// Level-e suite totals pinned in PR 1 (`suite_differential.rs` GOLDEN):
/// `(cycles, instrs, stall_cycles, mac_ops)`.
const SUITE_E_GOLDEN: (u64, u64, u64, u64) = (825_766, 822_188, 3_460, 1_316_748);

/// The full RRM suite as `(shared network, input window)` pairs plus the
/// serial golden run of each, computed on fresh single engines.
fn suite_with_goldens(
    level: OptLevel,
) -> Vec<(Arc<Network>, Vec<Vec<rnnasip_fixed::Q3p12>>, NetworkRun)> {
    rnnasip_rrm::suite()
        .into_iter()
        .map(|bench| {
            let input = bench.input();
            let golden = KernelBackend::new(level)
                .compile_network(&bench.network)
                .unwrap()
                .engine()
                .run(&input)
                .unwrap();
            (Arc::new(bench.network), input, golden)
        })
        .collect()
}

/// In-place Fisher–Yates with the repo's deterministic SplitMix64 RNG.
fn shuffle(order: &mut [usize], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

/// The determinism pin: the 10-net suite through the pool at 1, 2 and 8
/// workers, each with a different shuffled submission order, must return
/// per-request outputs and cycle counts bit-identical to the serial
/// golden, and the merged statistics must byte-match the serial
/// aggregate — which itself must still equal the PR 1 suite golden.
#[test]
fn pooled_suite_matches_serial_golden_at_every_worker_count() {
    let level = OptLevel::IfmTile;
    let suite = suite_with_goldens(level);

    // Serial aggregate (submission = suite order) and its PR 1 pin.
    let serial = RunReport::merged(suite.iter().map(|(_, _, g)| &g.report));
    assert_eq!(
        (
            serial.cycles(),
            serial.instrs(),
            serial.stats().stall_cycles(),
            serial.mac_ops(),
        ),
        SUITE_E_GOLDEN,
        "serial suite drifted from the PR 1 golden"
    );
    let serial_csv = serial.stats().to_csv();

    for (workers, seed) in [(1, 11), (2, 22), (8, 88)] {
        let mut order: Vec<usize> = (0..suite.len()).collect();
        shuffle(&mut order, seed);

        let mut batch = BatchRequest::new();
        for &net_idx in &order {
            let (net, input, _) = &suite[net_idx];
            batch.push(net.clone(), level, input.clone());
        }

        let pool = EnginePool::with_workers(workers);
        let response = pool.run_batch(batch);
        assert!(response.all_ok(), "{workers} workers: a request failed");
        assert_eq!(response.recovered(), 0);

        // Slot i answers the i-th *submitted* request, so outcome i must
        // match the golden of the net shuffled into position i.
        for (slot, outcome) in response.outcomes().iter().enumerate() {
            let golden = &suite[order[slot]].2;
            let run = outcome.result.as_ref().unwrap();
            assert_eq!(
                run.outputs, golden.outputs,
                "{workers} workers, slot {slot}: outputs diverged"
            );
            assert_eq!(
                run.report.cycles(),
                golden.report.cycles(),
                "{workers} workers, slot {slot}: cycles diverged"
            );
            assert_eq!(
                run.report.stats().to_csv(),
                golden.report.stats().to_csv(),
                "{workers} workers, slot {slot}: per-mnemonic rows diverged"
            );
        }

        // The aggregate is order-independent: merged over the shuffled
        // batch, it still byte-matches the serial-order aggregate.
        let merged = response.merged_report();
        assert_eq!(
            (
                merged.cycles(),
                merged.instrs(),
                merged.stats().stall_cycles(),
                merged.mac_ops(),
            ),
            SUITE_E_GOLDEN,
            "{workers} workers: merged totals diverged"
        );
        assert_eq!(
            merged.stats().to_csv(),
            serial_csv,
            "{workers} workers: merged stats rows diverged"
        );
    }
}

/// A watchdog fault armed on one request must not fail the batch: the
/// owning worker heals in place (first rung of the ladder — the eager
/// post-failure rewind makes the retry clean) and every result, the
/// recovered one included, stays bit-identical to the golden.
#[test]
fn fault_injected_request_heals_in_place_without_failing_the_batch() {
    let level = OptLevel::IfmTile;
    let bench = rnnasip_rrm::suite().remove(3); // eisen2019
    let input = bench.input();
    let net = Arc::new(bench.network);
    let golden = KernelBackend::new(level)
        .compile_network(&net)
        .unwrap()
        .engine()
        .run(&input)
        .unwrap();

    let mut batch = BatchRequest::new();
    for i in 0..6 {
        if i == 2 {
            // A 10-cycle watchdog budget hangs the first attempt.
            batch.push_with_faults(
                net.clone(),
                level,
                input.clone(),
                FaultPlan::new().with_watchdog(10),
            );
        } else {
            batch.push(net.clone(), level, input.clone());
        }
    }

    let pool = EnginePool::with_workers(2);
    let response = pool.run_batch(batch);
    assert!(response.all_ok(), "fault must be healed, not surfaced");
    assert_eq!(response.recovered(), 1);
    for (slot, outcome) in response.outcomes().iter().enumerate() {
        let run = outcome.result.as_ref().unwrap();
        assert_eq!(run.outputs, golden.outputs, "slot {slot}");
        assert_eq!(run.report.cycles(), golden.report.cycles(), "slot {slot}");
        if slot == 2 {
            assert!(outcome.recovered());
            assert_eq!(outcome.recovery, RecoveryAction::Rewind);
        } else {
            assert_eq!(outcome.recovery, RecoveryAction::FirstTry);
        }
    }
}

/// The cluster knob: a pool built with `with_workers_and_cores` compiles
/// every shard as an N-core cluster. Outputs must stay bit-identical to
/// the serial single-core goldens, and each answer must carry the
/// cluster report (per-core rows, latency strictly below the single-core
/// cycle count on nets big enough to tile).
#[test]
fn pooled_cluster_engines_match_serial_goldens() {
    let level = OptLevel::IfmTile;
    let cores = 2;
    let suite = suite_with_goldens(level);

    let mut batch = BatchRequest::new();
    for (net, input, _) in &suite {
        batch.push(net.clone(), level, input.clone());
    }

    let pool = EnginePool::with_workers_and_cores(2, cores);
    let response = pool.run_batch(batch);
    assert!(response.all_ok(), "a clustered request failed");

    for (slot, outcome) in response.outcomes().iter().enumerate() {
        let golden = &suite[slot].2;
        let run = outcome.result.as_ref().unwrap();
        assert_eq!(
            run.outputs, golden.outputs,
            "slot {slot}: clustered outputs diverged from single-core golden"
        );
        assert_eq!(
            run.report.per_core().len(),
            cores,
            "slot {slot}: missing per-core report rows"
        );
        // Every suite net except the tiny eisen2019 MLP tiles well
        // enough that the 2-core critical path beats one core.
        if golden.report.cycles() > 10_000 {
            assert!(
                run.report.latency_cycles() < golden.report.cycles(),
                "slot {slot}: 2-core latency {} not below single-core {}",
                run.report.latency_cycles(),
                golden.report.cycles()
            );
        }
    }
}

/// Current thread count of this process (Linux `/proc`); falls back to
/// 0 where unavailable, which disables the leak bound below.
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Graceful-shutdown regression: pools created and dropped under
/// submission load must join every worker (no thread leak across 100
/// generations) and never wedge a ticket — whether the pool is dropped
/// before or after the ticket is waited on, queued work still drains.
#[test]
fn hundred_pools_shut_down_cleanly_under_submission_load() {
    let level = OptLevel::IfmTile;
    let bench = rnnasip_rrm::suite().remove(3); // eisen2019, fast
    let input = bench.input();
    let net = Arc::new(bench.network);
    let golden = KernelBackend::new(level)
        .compile_network(&net)
        .unwrap()
        .engine()
        .run(&input)
        .unwrap();

    let before = process_threads();
    for generation in 0..100 {
        let pool = EnginePool::with_workers(1 + generation % 4);
        let mut batch = BatchRequest::new();
        for _ in 0..4 {
            batch.push(net.clone(), level, input.clone());
        }
        let ticket = pool.submit(batch);
        if generation % 2 == 0 {
            // Drop the pool FIRST: Drop closes the scheduler and joins
            // the workers, which drain the queue before exiting — the
            // ticket must still complete with full, correct results.
            drop(pool);
        }
        let response = ticket.wait();
        assert_eq!(response.len(), 4, "generation {generation}");
        assert!(response.all_ok(), "generation {generation}");
        for outcome in response.outcomes() {
            assert_eq!(
                outcome.result.as_ref().unwrap().outputs,
                golden.outputs,
                "generation {generation}"
            );
        }
    }
    let after = process_threads();
    // ~250 worker threads were created and joined across the loop. The
    // bound is slack (other tests run concurrently in this binary), but
    // a Drop that leaked workers would blow far past it.
    if before > 0 && after > 0 {
        assert!(
            after <= before + 16,
            "worker threads leaked: {before} -> {after}"
        );
    }
}

/// Mutes the default panic-hook banner for the pool's *injected* test
/// panics (they fire on worker threads, whose stderr libtest cannot
/// capture); every other panic still reaches the previous hook.
fn mute_injected_panic_banner() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            prev(info);
        }
    }));
}

/// Worker-panic containment: an injected panic mid-request must not
/// poison the pool. The batch completes with every slot correct, the
/// panicked request retried on a quarantined-and-respawned engine, the
/// worker threads all survive, and a follow-up batch serves clean.
#[test]
fn worker_panic_is_contained_and_the_pool_stays_live() {
    mute_injected_panic_banner();
    let level = OptLevel::IfmTile;
    let bench = rnnasip_rrm::suite().remove(3); // eisen2019
    let input = bench.input();
    let net = Arc::new(bench.network);
    let golden = KernelBackend::new(level)
        .compile_network(&net)
        .unwrap()
        .engine()
        .run(&input)
        .unwrap();

    let pool = EnginePool::with_workers(2);
    let threads_before = process_threads();
    pool.inject_worker_panics(1);

    let mut batch = BatchRequest::new();
    for _ in 0..6 {
        batch.push(net.clone(), level, input.clone());
    }
    let response = pool.run_batch(batch);
    assert!(response.all_ok(), "the panicked request must be retried");
    assert_eq!(pool.worker_panics_caught(), 1, "exactly one panic fired");
    assert_eq!(pool.workers(), 2, "no worker was lost");
    assert_eq!(
        response.recovered(),
        1,
        "the retried slot reports its recovery"
    );
    for (slot, outcome) in response.outcomes().iter().enumerate() {
        let run = outcome.result.as_ref().unwrap();
        assert_eq!(run.outputs, golden.outputs, "slot {slot}");
        assert_eq!(run.report.cycles(), golden.report.cycles(), "slot {slot}");
        assert!(!outcome.sdc_detected, "a panic is not an SDC");
        if outcome.recovered() {
            assert_eq!(outcome.recovery, RecoveryAction::Rebuild);
        }
    }

    // The pool keeps serving: a second batch runs entirely clean.
    let mut batch = BatchRequest::new();
    for _ in 0..4 {
        batch.push(net.clone(), level, input.clone());
    }
    let response = pool.run_batch(batch);
    assert!(response.all_ok());
    assert_eq!(response.recovered(), 0, "no lingering damage");
    assert_eq!(pool.worker_panics_caught(), 1, "no further panics");

    // catch_unwind keeps the worker threads alive, so containment leaks
    // no threads by construction; pin it anyway.
    let threads_after = process_threads();
    if threads_before > 0 && threads_after > 0 {
        assert!(
            threads_after <= threads_before + 16,
            "threads leaked: {threads_before} -> {threads_after}"
        );
    }
}

/// SDC containment on a guarded pool: a silent weight-memory flip armed
/// on one request trips the ABFT guard, survives the verify re-run
/// (silent flips evade the dirty-block rewind by design), and is finally
/// cleared by the rebuild rung — the answer ships bit-identical to the
/// golden, flagged `sdc_detected` and `sdc_healed`. Clean slots on the
/// same guarded pool stay bit-identical to the unguarded serial path
/// with no flags raised.
#[test]
fn guarded_pool_detects_and_heals_silent_corruption() {
    let level = OptLevel::IfmTile;
    let bench = rnnasip_rrm::suite().remove(3); // eisen2019
    let input = bench.input();
    let net = Arc::new(bench.network);
    let compiled = KernelBackend::new(level).compile_network(&net).unwrap();
    let golden = compiled.engine().run(&input).unwrap();
    let bias = compiled.guards()[0].region.bias32;

    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: bias,
            bit: 4,
            silent: true,
        },
    });

    let pool = EnginePool::with_workers_guarded(2);
    let mut batch = BatchRequest::new();
    for i in 0..5 {
        if i == 2 {
            batch.push_with_faults(net.clone(), level, input.clone(), plan.clone());
        } else {
            batch.push(net.clone(), level, input.clone());
        }
    }
    let response = pool.run_batch(batch);
    assert!(response.all_ok(), "SDC must be contained, not surfaced");
    for (slot, outcome) in response.outcomes().iter().enumerate() {
        let run = outcome.result.as_ref().unwrap();
        assert_eq!(run.outputs, golden.outputs, "slot {slot}: outputs");
        assert_eq!(
            run.report.cycles(),
            golden.report.cycles(),
            "slot {slot}: cycles"
        );
        if slot == 2 {
            assert!(outcome.sdc_detected, "the guard must flag the flip");
            assert!(outcome.sdc_healed, "the rebuild rung must clear it");
            assert_eq!(outcome.recovery, RecoveryAction::Rebuild);
        } else {
            assert!(!outcome.sdc_detected, "slot {slot}: clean run flagged");
            assert!(!outcome.sdc_healed);
            assert_eq!(outcome.recovery, RecoveryAction::FirstTry);
        }
    }
}

/// A *tracked* (non-silent) flip heals one rung earlier: the verify
/// re-run starts from a rewound image, so the corruption is already gone
/// and the request never needs the rebuild.
#[test]
fn guarded_pool_heals_tracked_corruption_on_the_verify_rung() {
    let level = OptLevel::IfmTile;
    let bench = rnnasip_rrm::suite().remove(3); // eisen2019
    let input = bench.input();
    let net = Arc::new(bench.network);
    let compiled = KernelBackend::new(level).compile_network(&net).unwrap();
    let golden = compiled.engine().run(&input).unwrap();
    let bias = compiled.guards()[0].region.bias32;

    let plan = FaultPlan::new().with_fault(Fault {
        at_instret: 0,
        site: FaultSite::MemBit {
            addr: bias,
            bit: 4,
            silent: false,
        },
    });

    let pool = EnginePool::with_workers_guarded(1);
    let mut batch = BatchRequest::new();
    batch.push_with_faults(net.clone(), level, input.clone(), plan);
    let response = pool.run_batch(batch);
    assert!(response.all_ok());
    let outcome = &response.outcomes()[0];
    assert!(outcome.sdc_detected);
    assert!(outcome.sdc_healed);
    assert_eq!(outcome.recovery, RecoveryAction::Verify);
    let run = outcome.result.as_ref().unwrap();
    assert_eq!(run.outputs, golden.outputs);
    assert_eq!(run.report.cycles(), golden.report.cycles());
}

/// A guarded pool behind the traffic [`Front`] on clean traffic: the
/// report (per-class SDC counters included) must be byte-identical to an
/// unguarded pool's — guards cost nothing observable on clean inputs,
/// and the counters stay zero.
#[test]
fn front_over_guarded_pool_matches_unguarded_on_clean_traffic() {
    let level = OptLevel::IfmTile;
    let bench = rnnasip_rrm::suite().remove(3); // eisen2019
    let input = bench.input();
    let net = Arc::new(bench.network);
    let make = || {
        (0..12u64)
            .map(|i| Arrival {
                net: net.clone(),
                level,
                sequence: input.clone(),
                arrival: i * 500,
                deadline: i * 500 + 200_000,
                class: (i % 3) as usize,
                ue: i,
            })
            .collect::<Vec<_>>()
    };
    let cfg = FrontConfig {
        batch_window: 1_000,
        ..FrontConfig::default()
    };

    let plain = EnginePool::with_workers(2);
    let unguarded = Front::new(&plain, cfg.clone()).serve(make().into_iter());
    let armed = EnginePool::with_workers_guarded(2);
    let guarded = Front::new(&armed, cfg).serve(make().into_iter());

    assert_eq!(guarded, unguarded, "guards must be invisible when clean");
    let total = guarded.aggregate();
    assert_eq!(total.served, 12);
    assert_eq!(total.sdc_detected, 0, "no false positives");
    assert_eq!(total.sdc_healed, 0);
}
