// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Property test: *any* well-formed FC layer is bit-exact on *any*
//! optimization level. Shapes, weights, biases, activations and inputs
//! are all randomized; the invariant is absolute equality with the
//! golden Q3.12 model.

use proptest::prelude::*;
use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, FcLayer, Matrix};

fn arb_act() -> impl Strategy<Value = Act> {
    prop_oneof![
        Just(Act::None),
        Just(Act::Relu),
        Just(Act::Tanh),
        Just(Act::Sigmoid),
    ]
}

fn arb_level() -> impl Strategy<Value = OptLevel> {
    prop_oneof![
        Just(OptLevel::Baseline),
        Just(OptLevel::Xpulp),
        Just(OptLevel::OfmTile),
        Just(OptLevel::SdotSp),
        Just(OptLevel::IfmTile),
    ]
}

fn arb_q(range: f64) -> impl Strategy<Value = Q3p12> {
    (-range..range).prop_map(Q3p12::from_f64)
}

proptest! {
    // Each case simulates a full kernel; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_fc_layer_is_bit_exact(
        n_out in 1usize..24,
        n_in in 1usize..40,
        act in arb_act(),
        level in arb_level(),
        tile in 1usize..=10,
        seed_weights in proptest::collection::vec(arb_q(4.0), 24 * 40),
        seed_input in proptest::collection::vec(arb_q(4.0), 40),
        seed_bias in proptest::collection::vec(arb_q(2.0), 24),
    ) {
        let weights: Vec<Q3p12> = seed_weights[..n_out * n_in].to_vec();
        let bias: Vec<Q3p12> = seed_bias[..n_out].to_vec();
        let input: Vec<Q3p12> = seed_input[..n_in].to_vec();
        let layer = FcLayer::new(Matrix::new(n_out, n_in, weights), bias, act);
        let expect = layer.forward_fixed(&input);
        let run = KernelBackend::new(level)
            .with_max_tile(tile)
            .run_fc(&layer, &input)
            .map_err(|e| TestCaseError::fail(format!(
                "{level:?} tile {tile} {n_out}x{n_in} {act:?}: {e}"
            )))?;
        prop_assert_eq!(
            run.outputs, expect,
            "level {:?}, tile {}, shape {}x{}, act {:?}",
            level, tile, n_out, n_in, act
        );
    }
}
