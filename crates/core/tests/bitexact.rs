//! Bit-exactness: every optimization level must produce *identical*
//! Q3.12 outputs to the golden fixed-point models, for every kernel type
//! and a range of shapes (including odd widths that force padding and
//! shapes that exercise remainder tiles).

use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, Conv2dLayer, FcLayer, LstmLayer, Matrix, Network, Stage};
use rnnasip_rng::StdRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_q(rng: &mut StdRng, scale: f64) -> Q3p12 {
    Q3p12::from_f64((rng.gen::<f64>() * 2.0 - 1.0) * scale)
}

fn rand_vec(rng: &mut StdRng, n: usize, scale: f64) -> Vec<Q3p12> {
    (0..n).map(|_| rand_q(rng, scale)).collect()
}

fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f64) -> Matrix {
    Matrix::new(rows, cols, rand_vec(rng, rows * cols, scale))
}

fn fc_layer(rng: &mut StdRng, n_out: usize, n_in: usize, act: Act) -> FcLayer {
    FcLayer::new(
        rand_matrix(rng, n_out, n_in, 0.5),
        rand_vec(rng, n_out, 0.5),
        act,
    )
}

#[test]
fn fc_bit_exact_all_levels_and_shapes() {
    let shapes = [
        (1usize, 2usize),
        (4, 8),
        (10, 16), // exactly one full tile
        (11, 16), // full tile + remainder 1
        (13, 16), // full tile + odd remainder 3
        (12, 6),  // tiny input
        (7, 9),   // odd n_in: padding path
        (3, 33),  // odd n_in, odd n_out
        (25, 34), // multiple tiles, n_pairs odd (IFM leftover)
    ];
    let acts = [Act::None, Act::Relu, Act::Tanh, Act::Sigmoid];
    let mut r = rng(2020);
    for &(n_out, n_in) in &shapes {
        for &act in &acts {
            let layer = fc_layer(&mut r, n_out, n_in, act);
            let input = rand_vec(&mut r, n_in, 1.5);
            let expect = layer.forward_fixed(&input);
            for level in OptLevel::ALL {
                let run = KernelBackend::new(level)
                    .run_fc(&layer, &input)
                    .unwrap_or_else(|e| panic!("{level:?} {n_out}x{n_in} {act:?}: {e}"));
                assert_eq!(
                    run.outputs, expect,
                    "level {level:?}, shape {n_out}x{n_in}, act {act:?}"
                );
            }
        }
    }
}

#[test]
fn fc_saturating_values_bit_exact() {
    // Large weights and inputs drive the accumulator into saturation;
    // the requantize/clip path must match the golden model exactly.
    let mut r = rng(7);
    let layer = FcLayer::new(
        rand_matrix(&mut r, 6, 12, 7.9),
        rand_vec(&mut r, 6, 7.9),
        Act::None,
    );
    let input = rand_vec(&mut r, 12, 7.9);
    let expect = layer.forward_fixed(&input);
    for level in OptLevel::ALL {
        let run = KernelBackend::new(level).run_fc(&layer, &input).unwrap();
        assert_eq!(run.outputs, expect, "level {level:?}");
    }
}

fn lstm_layer(rng: &mut StdRng, m: usize, n: usize) -> LstmLayer {
    let wx = [
        rand_matrix(rng, n, m, 0.5),
        rand_matrix(rng, n, m, 0.5),
        rand_matrix(rng, n, m, 0.5),
        rand_matrix(rng, n, m, 0.5),
    ];
    let wh = [
        rand_matrix(rng, n, n, 0.4),
        rand_matrix(rng, n, n, 0.4),
        rand_matrix(rng, n, n, 0.4),
        rand_matrix(rng, n, n, 0.4),
    ];
    let bias = [
        rand_vec(rng, n, 0.3),
        rand_vec(rng, n, 0.3),
        rand_vec(rng, n, 0.3),
        rand_vec(rng, n, 0.3),
    ];
    LstmLayer::new(wx, wh, bias)
}

#[test]
fn lstm_bit_exact_all_levels() {
    let mut r = rng(42);
    for (m, n, steps) in [(4usize, 6usize, 3usize), (8, 8, 5), (2, 12, 1)] {
        let layer = lstm_layer(&mut r, m, n);
        let seq: Vec<Vec<Q3p12>> = (0..steps).map(|_| rand_vec(&mut r, m, 1.0)).collect();
        let expect = layer.forward_fixed(&seq);
        for level in OptLevel::ALL {
            let run = KernelBackend::new(level)
                .run_lstm(&layer, &seq)
                .unwrap_or_else(|e| panic!("{level:?} lstm {m}x{n}x{steps}: {e}"));
            assert_eq!(run.outputs, expect, "level {level:?}, {m}x{n}x{steps}");
        }
    }
}

#[test]
fn conv_bit_exact_all_levels() {
    let mut r = rng(99);
    // (in_ch, h, w, out_ch, kh, kw) — odd taps exercise gather padding.
    for (in_ch, h, w, out_ch, kh, kw) in [
        (1usize, 5usize, 5usize, 3usize, 3usize, 3usize),
        (2, 6, 6, 4, 3, 3),
        (3, 4, 5, 2, 2, 2),
    ] {
        let conv = Conv2dLayer::new(
            in_ch,
            h,
            w,
            out_ch,
            kh,
            kw,
            rand_matrix(&mut r, out_ch, in_ch * kh * kw, 0.5),
            rand_vec(&mut r, out_ch, 0.3),
            Act::Relu,
        );
        let input = rand_vec(&mut r, conv.n_in(), 1.0);
        let expect = conv.forward_fixed(&input);
        for level in OptLevel::ALL {
            let run = KernelBackend::new(level)
                .run_conv(&conv, &input)
                .unwrap_or_else(|e| panic!("{level:?} conv: {e}"));
            assert_eq!(
                run.outputs, expect,
                "level {level:?}, conv {in_ch}x{h}x{w} -> {out_ch} ({kh}x{kw})"
            );
        }
    }
}

#[test]
fn network_pipelines_bit_exact() {
    let mut r = rng(1234);
    // MLP: fc-relu -> fc-sigmoid.
    let mlp = Network::new(
        "mlp",
        vec![
            Stage::Fc(fc_layer(&mut r, 12, 10, Act::Relu)),
            Stage::Fc(fc_layer(&mut r, 4, 12, Act::Sigmoid)),
        ],
    );
    let input = vec![rand_vec(&mut r, 10, 1.0)];
    let expect = mlp.forward_fixed(&input);
    for level in OptLevel::ALL {
        let run = KernelBackend::new(level).run_network(&mlp, &input).unwrap();
        assert_eq!(run.outputs, expect, "mlp at {level:?}");
    }

    // LSTM -> FC head.
    let lstm = lstm_layer(&mut r, 4, 8);
    let head = fc_layer(&mut r, 3, 8, Act::None);
    let net = Network::new(
        "lstm+fc",
        vec![
            Stage::Lstm {
                layer: lstm,
                steps: 4,
            },
            Stage::Fc(head),
        ],
    );
    let seq: Vec<Vec<Q3p12>> = (0..4).map(|_| rand_vec(&mut r, 4, 1.0)).collect();
    let expect = net.forward_fixed(&seq);
    for level in OptLevel::ALL {
        let run = KernelBackend::new(level).run_network(&net, &seq).unwrap();
        assert_eq!(run.outputs, expect, "lstm+fc at {level:?}");
    }

    // Conv -> conv -> FC head (CNN pipeline with a runtime im2col).
    let c1 = Conv2dLayer::new(
        1,
        6,
        6,
        4,
        3,
        3,
        rand_matrix(&mut r, 4, 9, 0.5),
        rand_vec(&mut r, 4, 0.2),
        Act::Relu,
    );
    let c2 = Conv2dLayer::new(
        4,
        4,
        4,
        2,
        2,
        2,
        rand_matrix(&mut r, 2, 16, 0.5),
        rand_vec(&mut r, 2, 0.2),
        Act::Relu,
    );
    let head = fc_layer(&mut r, 5, c2.n_out(), Act::None);
    let net = Network::new(
        "cnn",
        vec![Stage::Conv(c1), Stage::Conv(c2), Stage::Fc(head)],
    );
    let input = vec![rand_vec(&mut r, 36, 1.0)];
    let expect = net.forward_fixed(&input);
    for level in OptLevel::ALL {
        let run = KernelBackend::new(level).run_network(&net, &input).unwrap();
        assert_eq!(run.outputs, expect, "cnn at {level:?}");
    }
}

#[test]
fn speedups_are_monotonic_through_level_d() {
    // On a reasonably sized FC layer, each level through (d) must be
    // faster than the previous one; (e) may tie or slightly regress on
    // small layers (the paper observes the same).
    let mut r = rng(5);
    let layer = fc_layer(&mut r, 40, 64, Act::None);
    let input = rand_vec(&mut r, 64, 1.0);
    let mut cycles = Vec::new();
    for level in OptLevel::ALL {
        let run = KernelBackend::new(level).run_fc(&layer, &input).unwrap();
        cycles.push(run.report.cycles());
    }
    assert!(cycles[0] > cycles[1], "xpulp beats baseline: {cycles:?}");
    assert!(cycles[1] > cycles[2], "ofm beats xpulp: {cycles:?}");
    assert!(cycles[2] > cycles[3], "sdotsp beats ofm: {cycles:?}");
    // The overall paper-level factor: close to an order of magnitude.
    let speedup = cycles[0] as f64 / cycles[3] as f64;
    assert!(speedup > 8.0, "baseline/sdotsp speedup {speedup}");
}

#[test]
fn strided_and_padded_conv_bit_exact() {
    let mut r = rng(321);
    // (in_ch, h, w, out_ch, kh, kw, stride, pad)
    for (in_ch, h, w, out_ch, kh, kw, stride, pad) in [
        (
            1usize, 8usize, 8usize, 3usize, 3usize, 3usize, 2usize, 0usize,
        ),
        (2, 7, 7, 4, 3, 3, 1, 1), // "same" geometry
        (1, 9, 9, 2, 3, 3, 3, 1),
        (3, 6, 6, 2, 2, 2, 2, 0),
    ] {
        let conv = Conv2dLayer::with_geometry(
            in_ch,
            h,
            w,
            out_ch,
            kh,
            kw,
            stride,
            pad,
            rand_matrix(&mut r, out_ch, in_ch * kh * kw, 0.5),
            rand_vec(&mut r, out_ch, 0.3),
            Act::Relu,
        );
        let input = rand_vec(&mut r, conv.n_in(), 1.0);
        let expect = conv.forward_fixed(&input);
        // Float reference must also agree within quantization noise.
        let input_f: Vec<f64> = input.iter().map(|q| q.to_f64()).collect();
        let float = conv.forward_f64(&input_f);
        for (q, f) in expect.iter().zip(&float) {
            assert!(
                (q.to_f64() - f).abs() < 0.05,
                "stride {stride} pad {pad}: golden fixed {} vs float {f}",
                q.to_f64()
            );
        }
        for level in OptLevel::ALL {
            let run = KernelBackend::new(level)
                .run_conv(&conv, &input)
                .unwrap_or_else(|e| panic!("{level:?} strided conv: {e}"));
            assert_eq!(
                run.outputs, expect,
                "level {level:?}, conv s{stride} p{pad} {in_ch}x{h}x{w}"
            );
        }
    }
}
