// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Property tests on the golden models: structural identities the
//! kernels rely on.

use proptest::prelude::*;
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, Conv2dLayer, FcLayer, LstmLayer, LstmState, Matrix};

fn arb_q(scale: f64) -> impl Strategy<Value = Q3p12> {
    (-scale..scale).prop_map(Q3p12::from_f64)
}

fn arb_vec(n: usize, scale: f64) -> impl Strategy<Value = Vec<Q3p12>> {
    proptest::collection::vec(arb_q(scale), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A zero-weight layer outputs exactly its (activated) bias.
    #[test]
    fn zero_weights_pass_bias_through(bias in arb_vec(6, 7.0), x in arb_vec(4, 7.0)) {
        let layer = FcLayer::new(Matrix::zeros(6, 4), bias.clone(), Act::None);
        prop_assert_eq!(layer.forward_fixed(&x), bias);
    }

    /// An identity-weight layer with zero bias is the identity (when no
    /// activation and values fit without requantization error).
    #[test]
    fn identity_layer_is_identity(x in arb_vec(5, 7.0)) {
        let mut data = vec![Q3p12::ZERO; 25];
        for i in 0..5 {
            data[i * 5 + i] = Q3p12::from_f64(1.0);
        }
        let layer = FcLayer::new(
            Matrix::new(5, 5, data),
            vec![Q3p12::ZERO; 5],
            Act::None,
        );
        prop_assert_eq!(layer.forward_fixed(&x), x);
    }

    /// ReLU output is never negative and matches None-activation output
    /// where that output is non-negative.
    #[test]
    fn relu_matches_linear_on_positive_outputs(
        w in arb_vec(12, 1.0),
        b in arb_vec(3, 1.0),
        x in arb_vec(4, 1.0),
    ) {
        let lin = FcLayer::new(Matrix::new(3, 4, w.clone()), b.clone(), Act::None);
        let rel = FcLayer::new(Matrix::new(3, 4, w), b, Act::Relu);
        for (l, r) in lin.forward_fixed(&x).iter().zip(rel.forward_fixed(&x)) {
            prop_assert!(r.raw() >= 0);
            if l.raw() >= 0 {
                prop_assert_eq!(*l, r);
            } else {
                prop_assert_eq!(r, Q3p12::ZERO);
            }
        }
    }

    /// The LSTM with forget gate forced to 1 and input gate to 0
    /// preserves its cell state exactly.
    #[test]
    fn saturated_forget_gate_preserves_cell(c0 in arb_vec(3, 1.0), x in arb_vec(2, 1.0)) {
        let n = 3;
        let m = 2;
        let zeros_nm = Matrix::zeros(n, m);
        let zeros_nn = Matrix::zeros(n, n);
        // Biases: forget-gate bias +8 (sig -> 1), input-gate bias -8
        // (sig -> 0); output gate and candidate neutral.
        let big = Q3p12::from_f64(7.99);
        let neg = Q3p12::from_f64(-7.99);
        let layer = LstmLayer::new(
            [zeros_nm.clone(), zeros_nm.clone(), zeros_nm.clone(), zeros_nm],
            [zeros_nn.clone(), zeros_nn.clone(), zeros_nn.clone(), zeros_nn],
            [
                vec![Q3p12::ZERO; n], // o: sig(0) = 0.5
                vec![big; n],         // f -> ~1
                vec![neg; n],         // i -> ~0
                vec![Q3p12::ZERO; n], // g
            ],
        );
        let state = LstmState {
            h: vec![Q3p12::ZERO; n],
            c: c0.clone(),
        };
        let next = layer.step_fixed(&x, &state);
        // f = 4096/4096 exactly (converged sigmoid), i = 0: c' = c.
        prop_assert_eq!(next.c, c0);
    }

    /// Conv evaluated directly equals the same filter expressed as an
    /// FC layer applied to each im2col column — the lowering identity
    /// the CNN kernels are built on.
    #[test]
    fn conv_equals_fc_on_im2col_columns(
        weights in arb_vec(2 * 8, 0.5),
        bias in arb_vec(2, 0.5),
        input in arb_vec(2 * 3 * 4, 1.0),
    ) {
        let conv = Conv2dLayer::new(
            2, 3, 4, // 2 channels of 3x4
            2, 2, 2, // 2 output channels, 2x2 kernel
            Matrix::new(2, 8, weights.clone()),
            bias.clone(),
            Act::None,
        );
        let direct = conv.forward_fixed(&input);
        let cols = conv.im2col(&input);
        let fc = FcLayer::new(Matrix::new(2, 8, weights), bias, Act::None);
        let (oh, ow) = (conv.out_h(), conv.out_w());
        for px in 0..oh * ow {
            let column: Vec<Q3p12> = (0..8).map(|t| cols.get(t, px)).collect();
            let out = fc.forward_fixed(&column);
            for k in 0..2 {
                prop_assert_eq!(out[k], direct[k * oh * ow + px], "pixel {}, ch {}", px, k);
            }
        }
    }
}

/// Quantization error of a whole random network stays bounded (the
/// robustness claim behind "no retraining needed").
#[test]
fn random_deep_mlp_quantization_error_is_bounded() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(17);
    let mut layers = Vec::new();
    let widths = [12usize, 24, 24, 24, 8];
    for w in widths.windows(2) {
        let scale = (1.5 / w[0] as f64).sqrt();
        let data: Vec<Q3p12> = (0..w[0] * w[1])
            .map(|_| Q3p12::from_f64((rng.gen::<f64>() * 2.0 - 1.0) * scale))
            .collect();
        layers.push(FcLayer::new(
            Matrix::new(w[1], w[0], data),
            vec![Q3p12::ZERO; w[1]],
            Act::Tanh,
        ));
    }
    let x: Vec<f64> = (0..12).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let mut fq: Vec<Q3p12> = x.iter().map(|&v| Q3p12::from_f64(v)).collect();
    let mut ff = x;
    for layer in &layers {
        fq = layer.forward_fixed(&fq);
        ff = layer.forward_f64(&ff);
    }
    for (q, f) in fq.iter().zip(&ff) {
        assert!(
            (q.to_f64() - f).abs() < 0.05,
            "after 4 tanh layers: {} vs {f}",
            q.to_f64()
        );
    }
}
