//! Fully-connected (MLP) layer.

use crate::matrix::Matrix;
use rnnasip_fixed::{hw_sig, hw_tanh, Acc32, Q3p12};

/// Activation applied after a layer's matrix-vector product.
///
/// The fixed-point `Tanh`/`Sigmoid` variants use the *hardware* PLA unit
/// ([`rnnasip_fixed::hw_tanh`] / [`rnnasip_fixed::hw_sig`]) so kernel
/// output is bit-exact against this model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Act {
    /// No activation (linear output layer).
    #[default]
    None,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Hyperbolic tangent (PLA hardware unit in fixed point).
    Tanh,
    /// Logistic sigmoid (PLA hardware unit in fixed point).
    Sigmoid,
}

impl Act {
    /// Applies the activation in Q3.12, exactly as the kernels do.
    pub fn apply_fixed(self, x: Q3p12) -> Q3p12 {
        match self {
            Act::None => x,
            Act::Relu => {
                if x.raw() < 0 {
                    Q3p12::ZERO
                } else {
                    x
                }
            }
            Act::Tanh => hw_tanh(x),
            Act::Sigmoid => hw_sig(x),
        }
    }

    /// Applies the exact activation in double precision.
    pub fn apply_f64(self, x: f64) -> f64 {
        match self {
            Act::None => x,
            Act::Relu => x.max(0.0),
            Act::Tanh => x.tanh(),
            Act::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// A fully-connected layer: `o = act(b + W·x)` with `W ∈ R^{n_out × n_in}`.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::Q3p12;
/// use rnnasip_nn::{Act, FcLayer, Matrix};
///
/// let layer = FcLayer::new(
///     Matrix::from_f64(1, 2, &[1.0, -1.0]),
///     vec![Q3p12::from_f64(0.5)],
///     Act::None,
/// );
/// let out = layer.forward_fixed(&[Q3p12::from_f64(2.0), Q3p12::from_f64(1.0)]);
/// assert_eq!(out[0], Q3p12::from_f64(1.5));
/// ```
#[derive(Clone, Debug)]
pub struct FcLayer {
    weights: Matrix,
    bias: Vec<Q3p12>,
    act: Act,
}

impl FcLayer {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.rows()`.
    pub fn new(weights: Matrix, bias: Vec<Q3p12>, act: Act) -> Self {
        assert_eq!(bias.len(), weights.rows(), "bias length mismatch");
        Self { weights, bias, act }
    }

    /// Number of input neurons.
    pub fn n_in(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output neurons.
    pub fn n_out(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[Q3p12] {
        &self.bias
    }

    /// The activation.
    pub fn act(&self) -> Act {
        self.act
    }

    /// MAC operations per forward pass.
    pub fn mac_count(&self) -> u64 {
        self.weights.mac_count()
    }

    /// Bit-exact fixed-point forward pass: 32-bit accumulation seeded with
    /// `bias << 12`, `>> 12` requantization with saturation, hardware
    /// activation.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in()`.
    pub fn forward_fixed(&self, input: &[Q3p12]) -> Vec<Q3p12> {
        assert_eq!(input.len(), self.n_in(), "input length mismatch");
        (0..self.n_out())
            .map(|o| {
                let mut acc = Acc32::from_bias(self.bias[o]);
                for (w, x) in self.weights.row(o).iter().zip(input) {
                    acc = acc.mac(*w, *x);
                }
                self.act.apply_fixed(acc.requantize())
            })
            .collect()
    }

    /// Double-precision forward pass on dequantized weights.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in()`.
    pub fn forward_f64(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.n_in(), "input length mismatch");
        (0..self.n_out())
            .map(|o| {
                let sum: f64 = self
                    .weights
                    .row(o)
                    .iter()
                    .zip(input)
                    .map(|(w, x)| w.to_f64() * x)
                    .sum();
                self.act.apply_f64(sum + self.bias[o].to_f64())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layer(act: Act) -> FcLayer {
        FcLayer::new(
            Matrix::from_f64(2, 4, &[0.5, -0.25, 1.0, 0.0, -1.5, 2.0, 0.125, -0.5]),
            vec![Q3p12::from_f64(0.25), Q3p12::from_f64(-1.0)],
            act,
        )
    }

    #[test]
    fn fixed_matches_f64_within_quantization() {
        let layer = simple_layer(Act::None);
        let input_f = [0.5, -1.0, 0.75, 2.0];
        let input_q: Vec<Q3p12> = input_f.iter().map(|&v| Q3p12::from_f64(v)).collect();
        let fixed = layer.forward_fixed(&input_q);
        let float = layer.forward_f64(&input_f);
        for (q, f) in fixed.iter().zip(&float) {
            assert!((q.to_f64() - f).abs() < 1e-2, "{} vs {}", q.to_f64(), f);
        }
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let layer = simple_layer(Act::Relu);
        let input: Vec<Q3p12> = [1.0, 1.0, 0.0, 1.0]
            .iter()
            .map(|&v| Q3p12::from_f64(v))
            .collect();
        let out = layer.forward_fixed(&input);
        // Output 1 pre-activation: -1.5 + 2.0 - 0.5 - 1.0 = -1.0 -> ReLU 0.
        assert_eq!(out[1], Q3p12::ZERO);
        assert!(out[0].raw() >= 0);
    }

    #[test]
    fn sigmoid_uses_hardware_unit() {
        let layer = FcLayer::new(
            Matrix::from_f64(1, 2, &[1.0, 0.0]),
            vec![Q3p12::ZERO],
            Act::Sigmoid,
        );
        let x = Q3p12::from_f64(0.75);
        let out = layer.forward_fixed(&[x, Q3p12::ZERO]);
        assert_eq!(out[0], rnnasip_fixed::hw_sig(x));
    }

    #[test]
    fn bias_only_layer() {
        let layer = FcLayer::new(
            Matrix::zeros(3, 2),
            vec![
                Q3p12::from_f64(-0.5),
                Q3p12::from_f64(0.0),
                Q3p12::from_f64(3.25),
            ],
            Act::None,
        );
        let out = layer.forward_fixed(&[Q3p12::from_f64(1.0); 2]);
        assert_eq!(out[0], Q3p12::from_f64(-0.5));
        assert_eq!(out[2], Q3p12::from_f64(3.25));
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let layer = simple_layer(Act::None);
        let _ = layer.forward_fixed(&[Q3p12::ZERO; 3]);
    }
}
