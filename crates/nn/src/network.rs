//! Networks: sequences of stages, as used by the RRM benchmark suite.

use crate::conv::Conv2dLayer;
use crate::fc::FcLayer;
use crate::lstm::LstmLayer;
use rnnasip_fixed::Q3p12;

/// One stage of a [`Network`].
// Stages are built once per network and iterated, never stored in bulk;
// boxing the LSTM variant would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Stage {
    /// A fully-connected layer.
    Fc(FcLayer),
    /// An LSTM layer unrolled over `steps` time steps; consumes a
    /// sequence and emits the final hidden state.
    Lstm {
        /// The recurrent layer.
        layer: LstmLayer,
        /// Number of unrolled time steps per inference.
        steps: usize,
    },
    /// A convolutional layer on a flattened feature map.
    Conv(Conv2dLayer),
}

impl Stage {
    /// Flattened input width of the stage (per time step for LSTM).
    pub fn n_in(&self) -> usize {
        match self {
            Stage::Fc(l) => l.n_in(),
            Stage::Lstm { layer, .. } => layer.n_in(),
            Stage::Conv(c) => c.n_in(),
        }
    }

    /// Flattened output width of the stage.
    pub fn n_out(&self) -> usize {
        match self {
            Stage::Fc(l) => l.n_out(),
            Stage::Lstm { layer, .. } => layer.n_hidden(),
            Stage::Conv(c) => c.n_out(),
        }
    }

    /// MAC operations per inference through this stage.
    pub fn mac_count(&self) -> u64 {
        match self {
            Stage::Fc(l) => l.mac_count(),
            Stage::Lstm { layer, steps } => layer.mac_count_per_step() * *steps as u64,
            Stage::Conv(c) => c.mac_count(),
        }
    }

    /// `tanh`/`sig` evaluations per inference through this stage.
    pub fn act_count(&self) -> u64 {
        match self {
            Stage::Fc(l) => match l.act() {
                crate::Act::Tanh | crate::Act::Sigmoid => l.n_out() as u64,
                _ => 0,
            },
            Stage::Lstm { layer, steps } => layer.act_count_per_step() * *steps as u64,
            Stage::Conv(c) => match c.act() {
                crate::Act::Tanh | crate::Act::Sigmoid => c.n_out() as u64,
                _ => 0,
            },
        }
    }
}

/// A benchmark network: a named pipeline of stages.
///
/// The input of one inference is a *sequence* of vectors: LSTM first
/// stages consume the whole sequence (and emit their final hidden state);
/// all other stages consume a single vector, so non-recurrent networks
/// take a one-element sequence.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::Q3p12;
/// use rnnasip_nn::{Act, FcLayer, Matrix, Network, Stage};
///
/// let net = Network::new(
///     "toy",
///     vec![Stage::Fc(FcLayer::new(
///         Matrix::from_f64(2, 2, &[1.0, 0.0, 0.0, 1.0]),
///         vec![Q3p12::ZERO; 2],
///         Act::Relu,
///     ))],
/// );
/// let out = net.forward_fixed(&[vec![Q3p12::from_f64(0.5), Q3p12::from_f64(-1.0)]]);
/// assert_eq!(out[0], Q3p12::from_f64(0.5));
/// assert_eq!(out[1], Q3p12::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    name: String,
    stages: Vec<Stage>,
}

impl Network {
    /// Creates a network and validates stage-to-stage shape compatibility.
    ///
    /// # Panics
    ///
    /// Panics if consecutive stages disagree on vector width, or if an
    /// LSTM stage appears anywhere but first (supported topologies follow
    /// the benchmark suite: recurrence is always at the front).
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "network needs at least one stage");
        for (i, pair) in stages.windows(2).enumerate() {
            assert_eq!(
                pair[0].n_out(),
                pair[1].n_in(),
                "stage {i} output width != stage {} input width",
                i + 1
            );
            assert!(
                !matches!(pair[1], Stage::Lstm { .. }),
                "LSTM stages are only supported as the first stage"
            );
        }
        Self {
            name: name.into(),
            stages,
        }
    }

    /// The network's name (the citation tag in the benchmark suite, e.g.
    /// `"[13]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Per-time-step input width of the first stage.
    pub fn n_in(&self) -> usize {
        self.stages[0].n_in()
    }

    /// Number of input vectors one inference consumes (LSTM steps, else 1).
    pub fn seq_len(&self) -> usize {
        match &self.stages[0] {
            Stage::Lstm { steps, .. } => *steps,
            _ => 1,
        }
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.stages.last().expect("nonempty").n_out()
    }

    /// Total MAC operations per inference.
    pub fn mac_count(&self) -> u64 {
        self.stages.iter().map(Stage::mac_count).sum()
    }

    /// Total `tanh`/`sig` evaluations per inference.
    pub fn act_count(&self) -> u64 {
        self.stages.iter().map(Stage::act_count).sum()
    }

    /// Bit-exact fixed-point inference.
    ///
    /// # Panics
    ///
    /// Panics if the sequence length or vector widths mismatch.
    pub fn forward_fixed(&self, sequence: &[Vec<Q3p12>]) -> Vec<Q3p12> {
        assert_eq!(sequence.len(), self.seq_len(), "sequence length mismatch");
        let mut iter = self.stages.iter();
        let first = iter.next().expect("nonempty");
        let mut v = match first {
            Stage::Lstm { layer, .. } => layer.forward_fixed(sequence),
            Stage::Fc(l) => l.forward_fixed(&sequence[0]),
            Stage::Conv(c) => c.forward_fixed(&sequence[0]),
        };
        for stage in iter {
            v = match stage {
                Stage::Fc(l) => l.forward_fixed(&v),
                Stage::Conv(c) => c.forward_fixed(&v),
                Stage::Lstm { .. } => unreachable!("validated in new()"),
            };
        }
        v
    }

    /// Double-precision inference on dequantized weights.
    ///
    /// # Panics
    ///
    /// Panics if the sequence length or vector widths mismatch.
    pub fn forward_f64(&self, sequence: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(sequence.len(), self.seq_len(), "sequence length mismatch");
        let mut iter = self.stages.iter();
        let first = iter.next().expect("nonempty");
        let mut v = match first {
            Stage::Lstm { layer, .. } => layer.forward_f64(sequence),
            Stage::Fc(l) => l.forward_f64(&sequence[0]),
            Stage::Conv(c) => c.forward_f64(&sequence[0]),
        };
        for stage in iter {
            v = match stage {
                Stage::Fc(l) => l.forward_f64(&v),
                Stage::Conv(c) => c.forward_f64(&v),
                Stage::Lstm { .. } => unreachable!("validated in new()"),
            };
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Matrix};

    fn fc(n_out: usize, n_in: usize, act: Act) -> Stage {
        let weights: Vec<f64> = (0..n_out * n_in)
            .map(|i| ((i % 5) as f64 - 2.0) / 8.0)
            .collect();
        Stage::Fc(FcLayer::new(
            Matrix::from_f64(n_out, n_in, &weights),
            vec![Q3p12::from_f64(0.125); n_out],
            act,
        ))
    }

    #[test]
    fn two_stage_mlp_shapes() {
        let net = Network::new("mlp", vec![fc(8, 4, Act::Relu), fc(2, 8, Act::None)]);
        assert_eq!(net.n_in(), 4);
        assert_eq!(net.n_out(), 2);
        assert_eq!(net.seq_len(), 1);
        assert_eq!(net.mac_count(), 8 * 4 + 2 * 8);
        let out = net.forward_fixed(&[vec![Q3p12::from_f64(0.5); 4]]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "output width")]
    fn mismatched_stages_panic() {
        let _ = Network::new("bad", vec![fc(8, 4, Act::None), fc(2, 9, Act::None)]);
    }

    #[test]
    fn fixed_and_float_agree_on_small_mlp() {
        let net = Network::new("mlp", vec![fc(6, 4, Act::Tanh), fc(3, 6, Act::Sigmoid)]);
        let in_f = vec![vec![0.25, -0.5, 0.75, 0.0]];
        let in_q: Vec<Vec<Q3p12>> = in_f
            .iter()
            .map(|v| v.iter().map(|&x| Q3p12::from_f64(x)).collect())
            .collect();
        let of = net.forward_f64(&in_f);
        let oq = net.forward_fixed(&in_q);
        for (q, f) in oq.iter().zip(&of) {
            assert!((q.to_f64() - f).abs() < 0.02);
        }
    }
}
