//! Network serialization: a compact, self-describing binary format for
//! deploying externally trained weights.
//!
//! The paper's deployment flow is *train in float → quantize to Q3.12 →
//! run on the core, no retraining*. This module is the hand-off point:
//! a training pipeline dumps its network in this format, and the kernel
//! backend consumes it unchanged.
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   "RNNA"            4 bytes
//! version u16 = 1
//! stages  u16
//! per stage: tag u8 (0 = FC, 1 = LSTM, 2 = Conv), then:
//!   FC:   act u8, n_out u32, n_in u32, weights (n_out·n_in i16),
//!         bias (n_out i16)
//!   LSTM: steps u32, n_in u32, n_hidden u32, then per gate (o,f,i,g):
//!         wx (n·m i16), wh (n·n i16), bias (n i16)
//!   Conv: act u8, in_ch/in_h/in_w/out_ch/kh/kw/stride/pad (u32 each),
//!         weights (out_ch·in_ch·kh·kw i16), bias (out_ch i16)
//! name    u16 length + UTF-8 bytes (after all stages)
//! ```

use crate::{Act, Conv2dLayer, FcLayer, LstmLayer, Matrix, Network, Stage};
use core::fmt;
use rnnasip_fixed::Q3p12;

const MAGIC: &[u8; 4] = b"RNNA";
const VERSION: u16 = 1;

/// Errors produced while decoding a serialized network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The magic bytes or version did not match.
    BadHeader,
    /// The byte stream ended mid-field.
    Truncated,
    /// An unknown stage tag or activation code.
    BadTag(u8),
    /// The stage list was empty or the name was not UTF-8.
    Malformed(&'static str),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "not an RNNA v{VERSION} network file"),
            LoadError::Truncated => write!(f, "unexpected end of network data"),
            LoadError::BadTag(t) => write!(f, "unknown stage/activation tag {t}"),
            LoadError::Malformed(what) => write!(f, "malformed network data: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn act_code(act: Act) -> u8 {
    match act {
        Act::None => 0,
        Act::Relu => 1,
        Act::Tanh => 2,
        Act::Sigmoid => 3,
    }
}

fn act_from(code: u8) -> Result<Act, LoadError> {
    Ok(match code {
        0 => Act::None,
        1 => Act::Relu,
        2 => Act::Tanh,
        3 => Act::Sigmoid,
        other => return Err(LoadError::BadTag(other)),
    })
}

fn put_q(out: &mut Vec<u8>, values: &[Q3p12]) {
    for v in values {
        out.extend_from_slice(&v.raw().to_le_bytes());
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a network to its binary image.
///
/// # Example
///
/// ```
/// use rnnasip_nn::io::{load_network, save_network};
///
/// let net = rnnasip_nn::Network::new(
///     "toy",
///     vec![rnnasip_nn::Stage::Fc(rnnasip_nn::FcLayer::new(
///         rnnasip_nn::Matrix::zeros(2, 4),
///         vec![rnnasip_fixed::Q3p12::ZERO; 2],
///         rnnasip_nn::Act::Relu,
///     ))],
/// );
/// let bytes = save_network(&net);
/// let back = load_network(&bytes)?;
/// assert_eq!(back.name(), "toy");
/// assert_eq!(back.n_in(), 4);
/// # Ok::<(), rnnasip_nn::io::LoadError>(())
/// ```
pub fn save_network(net: &Network) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(net.stages().len() as u16).to_le_bytes());
    for stage in net.stages() {
        match stage {
            Stage::Fc(l) => {
                out.push(0);
                out.push(act_code(l.act()));
                put_u32(&mut out, l.n_out() as u32);
                put_u32(&mut out, l.n_in() as u32);
                put_q(&mut out, l.weights().data());
                put_q(&mut out, l.bias());
            }
            Stage::Lstm { layer, steps } => {
                out.push(1);
                put_u32(&mut out, *steps as u32);
                put_u32(&mut out, layer.n_in() as u32);
                put_u32(&mut out, layer.n_hidden() as u32);
                for g in 0..4 {
                    put_q(&mut out, layer.wx(g).data());
                    put_q(&mut out, layer.wh(g).data());
                    put_q(&mut out, layer.bias(g));
                }
            }
            Stage::Conv(c) => {
                out.push(2);
                out.push(act_code(c.act()));
                for v in [
                    c.in_ch(),
                    c.in_h(),
                    c.in_w(),
                    c.out_ch(),
                    c.kh(),
                    c.kw(),
                    c.stride(),
                    c.pad(),
                ] {
                    put_u32(&mut out, v as u32);
                }
                put_q(&mut out, c.weights().data());
                put_q(&mut out, c.bias());
            }
        }
    }
    let name = net.name().as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out
}

/// Cursor over the serialized bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadError> {
        let end = self.pos.checked_add(n).ok_or(LoadError::Truncated)?;
        if end > self.bytes.len() {
            return Err(LoadError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, LoadError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, LoadError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, LoadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn q_vec(&mut self, n: usize) -> Result<Vec<Q3p12>, LoadError> {
        let b = self.take(2 * n)?;
        Ok(b.chunks_exact(2)
            .map(|c| Q3p12::from_raw(i16::from_le_bytes([c[0], c[1]])))
            .collect())
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Result<Matrix, LoadError> {
        Ok(Matrix::new(rows, cols, self.q_vec(rows * cols)?))
    }
}

/// Deserializes a network.
///
/// # Errors
///
/// [`LoadError`] for truncated, corrupted or version-mismatched data.
pub fn load_network(bytes: &[u8]) -> Result<Network, LoadError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC || r.u16()? != VERSION {
        return Err(LoadError::BadHeader);
    }
    let n_stages = r.u16()? as usize;
    if n_stages == 0 {
        return Err(LoadError::Malformed("zero stages"));
    }
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        match r.u8()? {
            0 => {
                let act = act_from(r.u8()?)?;
                let n_out = r.u32()? as usize;
                let n_in = r.u32()? as usize;
                let weights = r.matrix(n_out, n_in)?;
                let bias = r.q_vec(n_out)?;
                stages.push(Stage::Fc(FcLayer::new(weights, bias, act)));
            }
            1 => {
                let steps = r.u32()? as usize;
                let m = r.u32()? as usize;
                let n = r.u32()? as usize;
                let mut wx = Vec::with_capacity(4);
                let mut wh = Vec::with_capacity(4);
                let mut bias = Vec::with_capacity(4);
                for _ in 0..4 {
                    wx.push(r.matrix(n, m)?);
                    wh.push(r.matrix(n, n)?);
                    bias.push(r.q_vec(n)?);
                }
                let wx: [Matrix; 4] = wx.try_into().expect("four gates");
                let wh: [Matrix; 4] = wh.try_into().expect("four gates");
                let bias: [Vec<Q3p12>; 4] = bias.try_into().expect("four gates");
                stages.push(Stage::Lstm {
                    layer: LstmLayer::new(wx, wh, bias),
                    steps,
                });
            }
            2 => {
                let act = act_from(r.u8()?)?;
                let geo: Vec<usize> = (0..8)
                    .map(|_| r.u32().map(|v| v as usize))
                    .collect::<Result<_, _>>()?;
                let (in_ch, in_h, in_w, out_ch, kh, kw, stride, pad) = (
                    geo[0], geo[1], geo[2], geo[3], geo[4], geo[5], geo[6], geo[7],
                );
                let weights = r.matrix(out_ch, in_ch * kh * kw)?;
                let bias = r.q_vec(out_ch)?;
                stages.push(Stage::Conv(Conv2dLayer::with_geometry(
                    in_ch, in_h, in_w, out_ch, kh, kw, stride, pad, weights, bias, act,
                )));
            }
            other => return Err(LoadError::BadTag(other)),
        }
    }
    let name_len = r.u16()? as usize;
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| LoadError::Malformed("name is not UTF-8"))?
        .to_owned();
    Ok(Network::new(name, stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_rng::StdRng;

    fn q(rng: &mut StdRng) -> Q3p12 {
        Q3p12::from_f64(rng.gen::<f64>() - 0.5)
    }

    fn sample_network() -> Network {
        let mut r = StdRng::seed_from_u64(9);
        let n = 4;
        let m = 2;
        let mat = |r: &mut StdRng, rows: usize, cols: usize| {
            Matrix::new(rows, cols, (0..rows * cols).map(|_| q(r)).collect())
        };
        let lstm = LstmLayer::new(
            [
                mat(&mut r, n, m),
                mat(&mut r, n, m),
                mat(&mut r, n, m),
                mat(&mut r, n, m),
            ],
            [
                mat(&mut r, n, n),
                mat(&mut r, n, n),
                mat(&mut r, n, n),
                mat(&mut r, n, n),
            ],
            [
                (0..n).map(|_| q(&mut r)).collect(),
                (0..n).map(|_| q(&mut r)).collect(),
                (0..n).map(|_| q(&mut r)).collect(),
                (0..n).map(|_| q(&mut r)).collect(),
            ],
        );
        let fc = FcLayer::new(
            mat(&mut r, 3, n),
            (0..3).map(|_| q(&mut r)).collect(),
            Act::Sigmoid,
        );
        Network::new(
            "sample",
            vec![
                Stage::Lstm {
                    layer: lstm,
                    steps: 3,
                },
                Stage::Fc(fc),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_inference() {
        let net = sample_network();
        let bytes = save_network(&net);
        let back = load_network(&bytes).expect("loads");
        assert_eq!(back.name(), "sample");
        // Bit-identical inference, the only equality that matters.
        let seq: Vec<Vec<Q3p12>> = (0..3)
            .map(|t| vec![Q3p12::from_f64(0.1 * t as f64), Q3p12::from_f64(-0.2)])
            .collect();
        assert_eq!(net.forward_fixed(&seq), back.forward_fixed(&seq));
    }

    #[test]
    fn conv_geometry_round_trips() {
        let conv = Conv2dLayer::with_geometry(
            2,
            6,
            6,
            3,
            3,
            3,
            2,
            1,
            Matrix::zeros(3, 18),
            vec![Q3p12::ZERO; 3],
            Act::Relu,
        );
        let net = Network::new("conv", vec![Stage::Conv(conv)]);
        let back = load_network(&save_network(&net)).expect("loads");
        match &back.stages()[0] {
            Stage::Conv(c) => {
                assert_eq!(c.stride(), 2);
                assert_eq!(c.pad(), 1);
                assert_eq!(c.out_h(), 3);
            }
            other => panic!("wrong stage {other:?}"),
        }
    }

    #[test]
    fn header_and_truncation_errors() {
        assert!(matches!(
            load_network(b"XXXX\x01\x00"),
            Err(LoadError::BadHeader)
        ));
        let net = sample_network();
        let bytes = save_network(&net);
        // Every truncation point fails cleanly.
        for cut in [0, 3, 6, 10, bytes.len() - 1] {
            assert!(load_network(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped stage tag is caught.
        let mut bad = bytes.clone();
        bad[8] = 9;
        assert!(matches!(load_network(&bad), Err(LoadError::BadTag(9))));
    }

    #[test]
    fn whole_benchmark_suite_could_round_trip() {
        // The format must cover every stage shape the suite uses; a tiny
        // stand-in of each kind is enough to lock the schema.
        let net = sample_network();
        let bytes = save_network(&net);
        assert!(bytes.len() > 100);
        assert_eq!(&bytes[..4], b"RNNA");
    }
}
