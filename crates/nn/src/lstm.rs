//! Long short-term memory layer (Equations 1–6 of the paper).

use crate::matrix::Matrix;
use rnnasip_fixed::{hw_sig, hw_tanh, Acc32, Q3p12};

/// Gate order used throughout: output, forget, input, cell-candidate —
/// the order the paper lists Equations (1)–(4) in.
pub const GATE_NAMES: [&str; 4] = ["o", "f", "i", "g"];

/// The recurrent state `(h, c)` of an LSTM layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LstmState {
    /// Hidden state `h_t`, length `n_hidden`.
    pub h: Vec<Q3p12>,
    /// Cell state `c_t`, length `n_hidden`.
    pub c: Vec<Q3p12>,
}

impl LstmState {
    /// All-zero initial state.
    pub fn zeros(n_hidden: usize) -> Self {
        Self {
            h: vec![Q3p12::ZERO; n_hidden],
            c: vec![Q3p12::ZERO; n_hidden],
        }
    }
}

/// An LSTM layer with `n_in` inputs and `n_hidden` memory cells:
///
/// ```text
/// o_t = sig (W_o x_t + U_o h_{t-1} + b_o)
/// f_t = sig (W_f x_t + U_f h_{t-1} + b_f)
/// i_t = sig (W_i x_t + U_i h_{t-1} + b_i)
/// g_t = tanh(W_c x_t + U_c h_{t-1} + b_c)
/// c_t = f_t ∘ c_{t-1} + i_t ∘ g_t
/// h_t = o_t ∘ tanh(c_t)
/// ```
///
/// The fixed-point step performs the same arithmetic the optimized
/// kernels perform: each gate pre-activation is a 32-bit accumulation
/// over the concatenated `[x, h]` stream requantized once; Hadamard
/// products are 16×16→32 multiplies shifted right by 12; the cell update
/// is computed in 32 bits and saturated once.
#[derive(Clone, Debug)]
pub struct LstmLayer {
    /// Gate weight matrices over the input, indexed by [`GATE_NAMES`]
    /// order; each is `n_hidden × n_in`.
    wx: [Matrix; 4],
    /// Gate weight matrices over the previous hidden state;
    /// each is `n_hidden × n_hidden`.
    wh: [Matrix; 4],
    /// Gate biases; each of length `n_hidden`.
    bias: [Vec<Q3p12>; 4],
}

impl LstmLayer {
    /// Creates an LSTM layer.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent.
    pub fn new(wx: [Matrix; 4], wh: [Matrix; 4], bias: [Vec<Q3p12>; 4]) -> Self {
        let n_hidden = wx[0].rows();
        let n_in = wx[0].cols();
        for g in 0..4 {
            assert_eq!(wx[g].rows(), n_hidden, "wx[{g}] rows");
            assert_eq!(wx[g].cols(), n_in, "wx[{g}] cols");
            assert_eq!(wh[g].rows(), n_hidden, "wh[{g}] rows");
            assert_eq!(wh[g].cols(), n_hidden, "wh[{g}] cols");
            assert_eq!(bias[g].len(), n_hidden, "bias[{g}] length");
        }
        Self { wx, wh, bias }
    }

    /// Number of input neurons.
    pub fn n_in(&self) -> usize {
        self.wx[0].cols()
    }

    /// Number of memory cells / hidden units.
    pub fn n_hidden(&self) -> usize {
        self.wx[0].rows()
    }

    /// Input weight matrix of gate `g` (in [`GATE_NAMES`] order).
    pub fn wx(&self, g: usize) -> &Matrix {
        &self.wx[g]
    }

    /// Recurrent weight matrix of gate `g`.
    pub fn wh(&self, g: usize) -> &Matrix {
        &self.wh[g]
    }

    /// Bias of gate `g`.
    pub fn bias(&self, g: usize) -> &[Q3p12] {
        &self.bias[g]
    }

    /// MAC operations per time step.
    pub fn mac_count_per_step(&self) -> u64 {
        (0..4)
            .map(|g| self.wx[g].mac_count() + self.wh[g].mac_count())
            .sum()
    }

    /// Activation-function evaluations per time step
    /// (`4·n` gate activations plus `n` cell tanh).
    pub fn act_count_per_step(&self) -> u64 {
        5 * self.n_hidden() as u64
    }

    /// One bit-exact fixed-point time step.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_in()` or the state size mismatches.
    pub fn step_fixed(&self, x: &[Q3p12], state: &LstmState) -> LstmState {
        let n = self.n_hidden();
        assert_eq!(x.len(), self.n_in(), "input length mismatch");
        assert_eq!(state.h.len(), n, "state length mismatch");

        // Gate pre-activations, requantized once per gate output.
        let mut gates: [Vec<Q3p12>; 4] = Default::default();
        for (g, gate) in gates.iter_mut().enumerate() {
            *gate = (0..n)
                .map(|j| {
                    let mut acc = Acc32::from_bias(self.bias[g][j]);
                    for (w, xi) in self.wx[g].row(j).iter().zip(x) {
                        acc = acc.mac(*w, *xi);
                    }
                    for (u, hk) in self.wh[g].row(j).iter().zip(&state.h) {
                        acc = acc.mac(*u, *hk);
                    }
                    let pre = acc.requantize();
                    if g == 3 {
                        hw_tanh(pre)
                    } else {
                        hw_sig(pre)
                    }
                })
                .collect();
        }
        let (o, f, i, g) = (&gates[0], &gates[1], &gates[2], &gates[3]);

        // c_t = f ∘ c + i ∘ g, computed in 32 bits, saturated once.
        let c: Vec<Q3p12> = (0..n)
            .map(|j| {
                let fc = f[j].widening_mul(state.c[j]) >> 12;
                let ig = i[j].widening_mul(g[j]) >> 12;
                Q3p12::from_i32_saturating(fc + ig)
            })
            .collect();

        // h_t = o ∘ tanh(c_t), one Hadamard with requantization.
        let h: Vec<Q3p12> = (0..n)
            .map(|j| {
                let t = hw_tanh(c[j]);
                Acc32::from_raw(o[j].widening_mul(t)).requantize()
            })
            .collect();

        LstmState { h, c }
    }

    /// One double-precision time step on dequantized weights.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn step_f64(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = self.n_hidden();
        assert_eq!(x.len(), self.n_in(), "input length mismatch");
        assert_eq!(h_prev.len(), n, "state length mismatch");
        let gate = |g: usize, j: usize| -> f64 {
            let wx: f64 = self.wx[g]
                .row(j)
                .iter()
                .zip(x)
                .map(|(w, v)| w.to_f64() * v)
                .sum();
            let wh: f64 = self.wh[g]
                .row(j)
                .iter()
                .zip(h_prev)
                .map(|(w, v)| w.to_f64() * v)
                .sum();
            wx + wh + self.bias[g][j].to_f64()
        };
        let sig = |v: f64| 1.0 / (1.0 + (-v).exp());
        let mut h = vec![0.0; n];
        let mut c = vec![0.0; n];
        for j in 0..n {
            let o = sig(gate(0, j));
            let f = sig(gate(1, j));
            let i = sig(gate(2, j));
            let g = gate(3, j).tanh();
            c[j] = f * c_prev[j] + i * g;
            h[j] = o * c[j].tanh();
        }
        (h, c)
    }

    /// Runs a whole fixed-point sequence from the zero state, returning
    /// the final hidden state (what the benchmark networks feed forward).
    pub fn forward_fixed(&self, sequence: &[Vec<Q3p12>]) -> Vec<Q3p12> {
        let mut state = LstmState::zeros(self.n_hidden());
        for x in sequence {
            state = self.step_fixed(x, &state);
        }
        state.h
    }

    /// Double-precision counterpart of [`forward_fixed`](Self::forward_fixed).
    pub fn forward_f64(&self, sequence: &[Vec<f64>]) -> Vec<f64> {
        let n = self.n_hidden();
        let (mut h, mut c) = (vec![0.0; n], vec![0.0; n]);
        for x in sequence {
            let (h2, c2) = self.step_f64(x, &h, &c);
            h = h2;
            c = c2;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic LSTM for tests.
    fn tiny_lstm() -> LstmLayer {
        let n = 2;
        let m = 2;
        let mk = |vals: &[f64]| Matrix::from_f64(n, m, vals);
        let wx = [
            mk(&[0.5, -0.5, 0.25, 0.25]),
            mk(&[1.0, 0.0, 0.0, 1.0]),
            mk(&[0.5, 0.5, -0.25, 0.75]),
            mk(&[0.3, -0.3, 0.6, 0.1]),
        ];
        let wh = [
            mk(&[0.1, 0.0, 0.0, 0.1]),
            mk(&[0.2, 0.1, -0.1, 0.2]),
            mk(&[0.0, 0.3, 0.3, 0.0]),
            mk(&[-0.2, 0.2, 0.2, -0.2]),
        ];
        let bias = [
            vec![Q3p12::from_f64(0.1); n],
            vec![Q3p12::from_f64(0.2); n],
            vec![Q3p12::from_f64(-0.1); n],
            vec![Q3p12::from_f64(0.0); n],
        ];
        LstmLayer::new(wx, wh, bias)
    }

    #[test]
    fn zero_input_zero_state_gives_small_output() {
        let lstm = tiny_lstm();
        let out = lstm.step_fixed(&[Q3p12::ZERO; 2], &LstmState::zeros(2));
        // h = sig(b_o) * tanh(sig(b_i) * tanh(b_c)); with b_c = 0 the cell
        // candidate is ~0, so h must be near zero.
        for h in &out.h {
            assert!(h.to_f64().abs() < 0.05, "h = {}", h.to_f64());
        }
    }

    #[test]
    fn fixed_tracks_float_reference() {
        let lstm = tiny_lstm();
        let seq_f: Vec<Vec<f64>> = vec![vec![0.5, -0.25], vec![1.0, 0.5], vec![-0.75, 0.25]];
        let seq_q: Vec<Vec<Q3p12>> = seq_f
            .iter()
            .map(|v| v.iter().map(|&x| Q3p12::from_f64(x)).collect())
            .collect();
        let hf = lstm.forward_f64(&seq_f);
        let hq = lstm.forward_fixed(&seq_q);
        for (q, f) in hq.iter().zip(&hf) {
            assert!(
                (q.to_f64() - f).abs() < 0.02,
                "fixed {} vs float {}",
                q.to_f64(),
                f
            );
        }
    }

    #[test]
    fn state_evolves_over_time() {
        let lstm = tiny_lstm();
        let x: Vec<Q3p12> = vec![Q3p12::from_f64(1.0), Q3p12::from_f64(-1.0)];
        let s1 = lstm.step_fixed(&x, &LstmState::zeros(2));
        let s2 = lstm.step_fixed(&x, &s1);
        assert_ne!(s1, s2, "state must change across steps");
    }

    #[test]
    fn mac_and_act_counts() {
        let lstm = tiny_lstm();
        // 4 gates * (2*2 + 2*2) = 32 MACs per step; 5*2 activations.
        assert_eq!(lstm.mac_count_per_step(), 32);
        assert_eq!(lstm.act_count_per_step(), 10);
    }
}
