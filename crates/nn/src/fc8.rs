//! INT8 fully-connected layer (the future-work quantization path).
//!
//! The paper stays at Q3.12 to avoid retraining but points to 8-bit
//! inference as the next efficiency step (Section II-A, refs [26], [27]).
//! [`FcLayer8`] provides the golden model: Q1.6 weights and activations,
//! i32 accumulation, `>> 6` requantization with saturation to i8 —
//! matching the `pv.sdotsp.b` / `pl.sdotsp.b` kernels four-MACs-per-
//! instruction datapath.

use crate::fc::{Act, FcLayer};
use rnnasip_fixed::{q3p12_to_q1p6, Q1p6, Q3p12};

/// A fully-connected layer quantized to Q1.6 (INT8).
///
/// Activations are limited to `None`/`Relu`: the hardware PLA unit is a
/// Q3.12 device, and the INT8 path targets ReLU-dominated MLPs.
///
/// # Example
///
/// ```
/// use rnnasip_fixed::Q1p6;
/// use rnnasip_nn::{Act, FcLayer8};
///
/// let layer = FcLayer8::new(
///     2, 2,
///     vec![Q1p6::from_f64(1.0), Q1p6::ZERO, Q1p6::ZERO, Q1p6::from_f64(-1.0)],
///     vec![Q1p6::ZERO; 2],
///     Act::Relu,
/// );
/// let out = layer.forward_fixed(&[Q1p6::from_f64(0.5), Q1p6::from_f64(0.5)]);
/// assert_eq!(out[0], Q1p6::from_f64(0.5));
/// assert_eq!(out[1], Q1p6::ZERO); // ReLU clamps -0.5
/// ```
#[derive(Clone, Debug)]
pub struct FcLayer8 {
    n_out: usize,
    n_in: usize,
    /// Row-major weights (`n_out × n_in`).
    weights: Vec<Q1p6>,
    bias: Vec<Q1p6>,
    act: Act,
}

impl FcLayer8 {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or on a `Tanh`/`Sigmoid` activation (the
    /// INT8 path supports `None`/`Relu` only).
    pub fn new(n_out: usize, n_in: usize, weights: Vec<Q1p6>, bias: Vec<Q1p6>, act: Act) -> Self {
        assert_eq!(weights.len(), n_out * n_in, "weight length");
        assert_eq!(bias.len(), n_out, "bias length");
        assert!(
            matches!(act, Act::None | Act::Relu),
            "INT8 layers support None/Relu activations only"
        );
        Self {
            n_out,
            n_in,
            weights,
            bias,
            act,
        }
    }

    /// Quantizes a Q3.12 layer to Q1.6 (weights saturate at ±2).
    ///
    /// # Panics
    ///
    /// Panics if the source layer uses a transcendental activation.
    pub fn quantize_from(layer: &FcLayer) -> Self {
        let weights = layer
            .weights()
            .data()
            .iter()
            .map(|&w| q3p12_to_q1p6(w))
            .collect();
        let bias = layer.bias().iter().map(|&b| q3p12_to_q1p6(b)).collect();
        Self::new(layer.n_out(), layer.n_in(), weights, bias, layer.act())
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// One weight row (the stream of one output neuron).
    ///
    /// # Panics
    ///
    /// Panics if `row >= n_out`.
    pub fn row(&self, row: usize) -> &[Q1p6] {
        assert!(row < self.n_out, "row out of range");
        &self.weights[row * self.n_in..(row + 1) * self.n_in]
    }

    /// The bias vector.
    pub fn bias(&self) -> &[Q1p6] {
        &self.bias
    }

    /// The activation.
    pub fn act(&self) -> Act {
        self.act
    }

    /// MACs per forward pass.
    pub fn mac_count(&self) -> u64 {
        (self.n_out * self.n_in) as u64
    }

    /// Bit-exact INT8 forward pass: `acc = (bias << 6) + Σ w·x`,
    /// requantized `>> 6` with saturation to i8, then ReLU if configured.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in`.
    pub fn forward_fixed(&self, input: &[Q1p6]) -> Vec<Q1p6> {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        (0..self.n_out)
            .map(|o| {
                let mut acc: i32 = (self.bias[o].raw() as i32) << 6;
                for (w, x) in self.row(o).iter().zip(input) {
                    acc = acc.wrapping_add(w.widening_mul(*x));
                }
                let y = Q1p6::from_i32_saturating(acc >> 6);
                match self.act {
                    Act::Relu if y.raw() < 0 => Q1p6::ZERO,
                    _ => y,
                }
            })
            .collect()
    }

    /// Double-precision reference on dequantized weights.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in`.
    pub fn forward_f64(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        (0..self.n_out)
            .map(|o| {
                let sum: f64 = self
                    .row(o)
                    .iter()
                    .zip(input)
                    .map(|(w, x)| w.to_f64() * x)
                    .sum();
                self.act.apply_f64(sum + self.bias[o].to_f64())
            })
            .collect()
    }
}

/// Quantizes a Q3.12 activation vector to Q1.6.
pub fn quantize_input8(input: &[Q3p12]) -> Vec<Q1p6> {
    input.iter().map(|&x| q3p12_to_q1p6(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn q16_layer() -> FcLayer {
        let weights: Vec<f64> = (0..24).map(|i| ((i % 9) as f64 - 4.0) / 8.0).collect();
        FcLayer::new(
            Matrix::from_f64(4, 6, &weights),
            vec![Q3p12::from_f64(0.125); 4],
            Act::Relu,
        )
    }

    #[test]
    fn quantized_layer_tracks_the_q3p12_original() {
        let l16 = q16_layer();
        let l8 = FcLayer8::quantize_from(&l16);
        let input16: Vec<Q3p12> = (0..6)
            .map(|i| Q3p12::from_f64((i as f64 - 2.0) / 4.0))
            .collect();
        let out16 = l16.forward_fixed(&input16);
        let out8 = l8.forward_fixed(&quantize_input8(&input16));
        for (a, b) in out16.iter().zip(&out8) {
            assert!(
                (a.to_f64() - b.to_f64()).abs() < 0.1,
                "{} vs {}",
                a.to_f64(),
                b.to_f64()
            );
        }
    }

    #[test]
    fn int8_matches_float_within_quantization_noise() {
        let l8 = FcLayer8::quantize_from(&q16_layer());
        let input_f: Vec<f64> = vec![0.5, -0.25, 0.75, 0.0, -0.5, 0.25];
        let input_q: Vec<Q1p6> = input_f.iter().map(|&v| Q1p6::from_f64(v)).collect();
        let qf = l8.forward_fixed(&input_q);
        let ff = l8.forward_f64(&input_f);
        for (q, f) in qf.iter().zip(&ff) {
            assert!((q.to_f64() - f).abs() < 0.1, "{} vs {}", q.to_f64(), f);
        }
    }

    #[test]
    fn saturation_at_q1p6_bounds() {
        let l8 = FcLayer8::new(1, 2, vec![Q1p6::MAX, Q1p6::MAX], vec![Q1p6::MAX], Act::None);
        let out = l8.forward_fixed(&[Q1p6::MAX, Q1p6::MAX]);
        assert_eq!(out[0], Q1p6::MAX);
    }

    #[test]
    #[should_panic(expected = "None/Relu")]
    fn transcendental_activation_rejected() {
        let _ = FcLayer8::new(1, 2, vec![Q1p6::ZERO; 2], vec![Q1p6::ZERO], Act::Tanh);
    }
}
