//! 2-D convolutional layer with im2col lowering.

use crate::fc::Act;
use crate::matrix::Matrix;
use rnnasip_fixed::{Acc32, Q3p12};

/// A 2-D convolution layer: `in_ch` input channels of `h × w` pixels,
/// `out_ch` output channels, `kh × kw` filters, configurable stride and
/// symmetric zero padding (defaults: stride 1, no padding, giving the
/// *valid* output `(h-kh+1) × (w-kw+1)`).
///
/// Feature maps are stored channel-major, row-major within a channel
/// (`c·h·w + y·w + x`). The convolution is evaluated both directly and via
/// **im2col** (the lowering the paper cites from [25], which lets the CNN
/// reuse the FC kernels); the two are bit-identical because the
/// accumulation order is preserved.
#[derive(Clone, Debug)]
pub struct Conv2dLayer {
    in_ch: usize,
    in_h: usize,
    in_w: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    /// `out_ch × (in_ch·kh·kw)` filter matrix, one row per output channel,
    /// inner order: channel-major, then kernel row, then kernel column.
    weights: Matrix,
    bias: Vec<Q3p12>,
    act: Act,
    stride: usize,
    pad: usize,
}

impl Conv2dLayer {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or the kernel exceeds the input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_ch: usize,
        in_h: usize,
        in_w: usize,
        out_ch: usize,
        kh: usize,
        kw: usize,
        weights: Matrix,
        bias: Vec<Q3p12>,
        act: Act,
    ) -> Self {
        Self::with_geometry(in_ch, in_h, in_w, out_ch, kh, kw, 1, 0, weights, bias, act)
    }

    /// Creates a convolution layer with explicit stride and symmetric
    /// zero padding. Output is
    /// `floor((in + 2·pad - k) / stride) + 1` per dimension.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, `stride == 0`, or the padded
    /// input is smaller than the kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn with_geometry(
        in_ch: usize,
        in_h: usize,
        in_w: usize,
        out_ch: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        weights: Matrix,
        bias: Vec<Q3p12>,
        act: Act,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            kh <= in_h + 2 * pad && kw <= in_w + 2 * pad,
            "kernel larger than padded input"
        );
        assert_eq!(weights.rows(), out_ch, "weight rows");
        assert_eq!(weights.cols(), in_ch * kh * kw, "weight cols");
        assert_eq!(bias.len(), out_ch, "bias length");
        Self {
            in_ch,
            in_h,
            in_w,
            out_ch,
            kh,
            kw,
            weights,
            bias,
            act,
            stride,
            pad,
        }
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Symmetric zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Number of input channels.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Kernel height.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Number of output channels.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Flattened input length (`in_ch·in_h·in_w`).
    pub fn n_in(&self) -> usize {
        self.in_ch * self.in_h * self.in_w
    }

    /// Flattened output length (`out_ch·out_h·out_w`).
    pub fn n_out(&self) -> usize {
        self.out_ch * self.out_h() * self.out_w()
    }

    /// The filter matrix (one row per output channel).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[Q3p12] {
        &self.bias
    }

    /// The activation.
    pub fn act(&self) -> Act {
        self.act
    }

    /// MAC operations per forward pass.
    pub fn mac_count(&self) -> u64 {
        (self.out_ch * self.out_h() * self.out_w() * self.in_ch * self.kh * self.kw) as u64
    }

    /// The im2col matrix: one *column* per output pixel, one row per
    /// filter tap, returned row-major as `(in_ch·kh·kw) × (out_h·out_w)`.
    /// Lowering the convolution this way turns it into the matrix-matrix
    /// product the FC kernels compute (Section II-A).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in()`.
    pub fn im2col(&self, input: &[Q3p12]) -> Matrix {
        assert_eq!(input.len(), self.n_in(), "input length mismatch");
        let (oh, ow) = (self.out_h(), self.out_w());
        let rows = self.in_ch * self.kh * self.kw;
        let mut data = vec![Q3p12::ZERO; rows * oh * ow];
        for c in 0..self.in_ch {
            for ky in 0..self.kh {
                for kx in 0..self.kw {
                    let row = (c * self.kh + ky) * self.kw + kx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            let v = if iy < 0
                                || ix < 0
                                || iy >= self.in_h as isize
                                || ix >= self.in_w as isize
                            {
                                Q3p12::ZERO
                            } else {
                                input[(c * self.in_h + iy as usize) * self.in_w + ix as usize]
                            };
                            data[row * (oh * ow) + oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
        Matrix::new(rows, oh * ow, data)
    }

    /// Bit-exact fixed-point forward pass (direct evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in()`.
    pub fn forward_fixed(&self, input: &[Q3p12]) -> Vec<Q3p12> {
        let cols = self.im2col(input);
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![Q3p12::ZERO; self.n_out()];
        for k in 0..self.out_ch {
            for px in 0..oh * ow {
                let mut acc = Acc32::from_bias(self.bias[k]);
                for (tap, w) in self.weights.row(k).iter().enumerate() {
                    acc = acc.mac(*w, cols.get(tap, px));
                }
                out[k * oh * ow + px] = self.act.apply_fixed(acc.requantize());
            }
        }
        out
    }

    /// Double-precision forward pass on dequantized weights.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in()`.
    pub fn forward_f64(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.n_in(), "input length mismatch");
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0.0; self.n_out()];
        for k in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut sum = self.bias[k].to_f64();
                    for c in 0..self.in_ch {
                        for ky in 0..self.kh {
                            for kx in 0..self.kw {
                                let tap = (c * self.kh + ky) * self.kw + kx;
                                let w = self.weights.get(k, tap).to_f64();
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= self.in_h as isize
                                    || ix >= self.in_w as isize
                                {
                                    continue;
                                }
                                let x =
                                    input[(c * self.in_h + iy as usize) * self.in_w + ix as usize];
                                sum += w * x;
                            }
                        }
                    }
                    out[(k * oh + oy) * ow + ox] = self.act.apply_f64(sum);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-channel 3x3 input, single 2x2 averaging-ish filter.
    fn tiny_conv() -> Conv2dLayer {
        Conv2dLayer::new(
            1,
            3,
            3,
            1,
            2,
            2,
            Matrix::from_f64(1, 4, &[0.25, 0.25, 0.25, 0.25]),
            vec![Q3p12::ZERO],
            Act::None,
        )
    }

    #[test]
    fn averaging_filter() {
        let conv = tiny_conv();
        let input: Vec<Q3p12> = (1..=9).map(|v| Q3p12::from_f64(v as f64 / 4.0)).collect();
        let out = conv.forward_fixed(&input);
        assert_eq!(out.len(), 4);
        // Top-left window: (1+2+4+5)/4 * 0.25 ... values/4: mean of
        // {0.25,0.5,1.0,1.25} * ... filter 0.25 each -> sum/4 = 0.75.
        assert!((out[0].to_f64() - 0.75).abs() < 1e-2);
    }

    #[test]
    fn fixed_matches_f64() {
        let conv = Conv2dLayer::new(
            2,
            4,
            4,
            3,
            3,
            3,
            Matrix::from_f64(
                3,
                18,
                &(0..54)
                    .map(|i| ((i as f64) - 27.0) / 40.0)
                    .collect::<Vec<_>>(),
            ),
            vec![
                Q3p12::from_f64(0.1),
                Q3p12::from_f64(-0.1),
                Q3p12::from_f64(0.0),
            ],
            Act::Relu,
        );
        let input_f: Vec<f64> = (0..32).map(|i| ((i % 7) as f64 - 3.0) / 4.0).collect();
        let input_q: Vec<Q3p12> = input_f.iter().map(|&v| Q3p12::from_f64(v)).collect();
        let qf = conv.forward_fixed(&input_q);
        let ff = conv.forward_f64(&input_f);
        assert_eq!(qf.len(), ff.len());
        for (q, f) in qf.iter().zip(&ff) {
            assert!((q.to_f64() - f).abs() < 0.05, "{} vs {}", q.to_f64(), f);
        }
    }

    #[test]
    fn im2col_shape() {
        let conv = tiny_conv();
        let input = vec![Q3p12::from_f64(1.0); 9];
        let cols = conv.im2col(&input);
        assert_eq!(cols.rows(), 4); // 1 channel * 2*2 taps
        assert_eq!(cols.cols(), 4); // 2*2 output pixels
    }

    #[test]
    fn mac_count() {
        let conv = tiny_conv();
        // 1 out-ch * 2*2 out pixels * 1 in-ch * 2*2 taps = 16.
        assert_eq!(conv.mac_count(), 16);
    }
}
