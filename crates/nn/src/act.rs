//! Activation-function error evaluation (the Fig. 2 reproduction).
//!
//! The paper sweeps the piecewise-linear interpolation design space —
//! interpolation range × number of intervals, under Q3.12 quantization —
//! and reports the tanh mean-squared error surface (Fig. 2). This module
//! regenerates that surface from the hardware model in
//! [`rnnasip_fixed::pla`].

pub use rnnasip_fixed::pla::{FitMode, PlaFunc, PlaTable};

/// One point of the Fig. 2 sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Upper end of the interpolation range (e.g. `4.0`).
    pub range: f64,
    /// Number of interpolation intervals `M`.
    pub intervals: u32,
    /// Mean squared error over the whole Q3.12 grid.
    pub mse: f64,
    /// Maximum absolute error over the whole Q3.12 grid.
    pub max_error: f64,
}

/// Sweeps PLA configurations over ranges and interval counts.
///
/// Ranges and intervals must both be powers of two times the Q3.12
/// resolution, expressed here as `(intervals, shift)` pairs where the
/// covered range is `intervals * 2^shift / 4096`. This helper takes the
/// caller-friendly form: a list of ranges (each a power of two between
/// `2^-3` and `8`) and a list of interval counts (powers of two), and
/// skips combinations that don't fit the Q3.12 domain.
///
/// # Example
///
/// ```
/// use rnnasip_nn::act::{sweep, FitMode, PlaFunc};
///
/// let points = sweep(PlaFunc::Tanh, &[2.0, 4.0], &[16, 32], FitMode::LeastSquares);
/// assert_eq!(points.len(), 4);
/// // More intervals at the same range: error shrinks.
/// assert!(points[1].mse <= points[0].mse);
/// ```
pub fn sweep(
    func: PlaFunc,
    ranges: &[f64],
    interval_counts: &[u32],
    mode: FitMode,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &range in ranges {
        let range_raw = (range * 4096.0).round() as u64;
        if range_raw == 0 || !range_raw.is_power_of_two() || range_raw > 32768 {
            continue;
        }
        for &m in interval_counts {
            if m == 0 || !m.is_power_of_two() || u64::from(m) > range_raw {
                continue;
            }
            let shift = (range_raw / u64::from(m)).trailing_zeros();
            let table = PlaTable::fit(func, m, shift, mode);
            out.push(SweepPoint {
                range,
                intervals: m,
                mse: table.mse(),
                max_error: table.max_error(),
            });
        }
    }
    out
}

/// The paper's chosen design point, for reference in reports:
/// range ±4, 32 intervals (MSE 9.81·10⁻⁷ and max error ±3.8·10⁻⁴ in the
/// paper's measurement).
pub fn design_point(func: PlaFunc) -> SweepPoint {
    let table = PlaTable::fit(func, 32, 9, FitMode::LeastSquares);
    SweepPoint {
        range: 4.0,
        intervals: 32,
        mse: table.mse(),
        max_error: table.max_error(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_skips_invalid_combinations() {
        // Range 16 exceeds Q3.12; range 3 is not a power of two.
        let pts = sweep(PlaFunc::Tanh, &[16.0, 3.0], &[8], FitMode::Endpoint);
        assert!(pts.is_empty());
        // More intervals than raw steps is impossible.
        let pts = sweep(PlaFunc::Tanh, &[1.0 / 4096.0], &[8], FitMode::Endpoint);
        assert!(pts.is_empty());
    }

    #[test]
    fn error_decreases_with_range_until_convergence() {
        // tanh(1) = 0.76: a ±1 range truncates far too early, so widening
        // the range to ±4 must reduce the error dramatically.
        let pts = sweep(PlaFunc::Tanh, &[1.0, 4.0], &[32], FitMode::LeastSquares);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].mse < pts[0].mse / 10.0);
    }

    #[test]
    fn design_point_matches_paper_decade() {
        let p = design_point(PlaFunc::Tanh);
        assert!(p.mse < 1e-5, "MSE {}", p.mse);
        assert!(p.max_error < 5e-3, "max {}", p.max_error);
    }
}
