//! Golden neural-network models for the RNNASIP reproduction.
//!
//! The RRM benchmark suite (Section II-C of the paper) uses three kernel
//! types: fully-connected layers, LSTMs and CNN layers. This crate
//! provides each of them twice:
//!
//! * a **bit-exact Q3.12 model** that performs precisely the arithmetic
//!   the optimized RISC-V kernels perform — 16×16→32 MACs, `>> 12`
//!   requantization with saturation, and the hardware piecewise-linear
//!   `tanh`/`sig` unit ([`rnnasip_fixed::pla`]). Kernel output from the
//!   instruction-set simulator is asserted *equal* to this model.
//! * a **double-precision reference** (`forward_f64`) using dequantized
//!   weights and exact activations, used to bound the end-to-end
//!   quantization error (the paper's claim that Q3.12 needs no retraining).
//!
//! [`Network`] composes stages into the benchmark networks, and
//! [`act`] evaluates piecewise-linear activation error surfaces for the
//! Fig. 2 reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod act;
pub mod io;

mod conv;
mod fc;
mod fc8;
mod lstm;
mod matrix;
mod network;

pub use conv::Conv2dLayer;
pub use fc::{Act, FcLayer};
pub use fc8::{quantize_input8, FcLayer8};
pub use lstm::{LstmLayer, LstmState, GATE_NAMES};
pub use matrix::Matrix;
pub use network::{Network, Stage};
