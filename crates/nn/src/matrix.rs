//! Row-major Q3.12 matrix.

use rnnasip_fixed::Q3p12;

/// A dense row-major matrix of Q3.12 weights.
///
/// Row `o` holds the weights of output neuron `o` — the layout the
/// optimized kernels stream with post-increment loads (one pointer per
/// output-tile row, Table II).
///
/// # Example
///
/// ```
/// use rnnasip_fixed::Q3p12;
/// use rnnasip_nn::Matrix;
///
/// let m = Matrix::from_f64(2, 3, &[1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.get(1, 2), Q3p12::from_f64(0.5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Q3p12>,
}

impl Matrix {
    /// Creates a matrix from row-major Q3.12 data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Q3p12>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(rows, cols, vec![Q3p12::ZERO; rows * cols])
    }

    /// Quantizes row-major `f64` data to Q3.12.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_f64(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self::new(
            rows,
            cols,
            data.iter().map(|&v| Q3p12::from_f64(v)).collect(),
        )
    }

    /// Number of rows (output neurons).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input neurons).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, row: usize, col: usize) -> Q3p12 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// One row as a slice (the weight stream of one output neuron).
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> &[Q3p12] {
        assert!(row < self.rows, "row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[Q3p12] {
        &self.data
    }

    /// Total number of multiply-accumulates of one mat-vec product.
    pub fn mac_count(&self) -> u64 {
        (self.rows * self.cols) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let m = Matrix::from_f64(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1)[0], Q3p12::from_f64(3.0));
        assert_eq!(m.get(0, 1), Q3p12::from_f64(2.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let _ = Matrix::from_f64(2, 2, &[1.0]);
    }
}
