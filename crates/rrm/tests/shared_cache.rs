//! Satellite regression: an [`EngineCache`] shared across threads never
//! aliases a simulator `Machine`, and concurrent hammering of one
//! `(network, level)` key stays bit-exact with the serial path.

use rnnasip_core::{KernelBackend, OptLevel};
use rnnasip_rrm::EngineCache;
use std::sync::Arc;
use std::thread;

/// Two threads checking out the same key at the same time must each get
/// their own engine (distinct `Machine`s from one compiled artifact) —
/// the structural property that makes the cache safe to share.
#[test]
fn concurrent_checkouts_never_alias_a_machine() {
    let suite = rnnasip_rrm::suite();
    let net = &suite[3]; // eisen2019: smallest, fastest to compile
    let cache = Arc::new(EngineCache::new());
    let input = net.input();

    let barrier = Arc::new(std::sync::Barrier::new(2));
    thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                let network = &net.network;
                let input = &input;
                s.spawn(move || {
                    let mut engine = cache.checkout(network, OptLevel::IfmTile).unwrap();
                    let addr = engine.machine() as *const _ as usize;
                    // Hold the checkout across the rendezvous so both
                    // engines demonstrably exist at the same instant.
                    barrier.wait();
                    let run = engine.run(input).unwrap();
                    barrier.wait();
                    (addr, run)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_ne!(
            results[0].0, results[1].0,
            "two checkouts aliased a Machine"
        );
        assert_eq!(results[0].1.outputs, results[1].1.outputs);
        assert_eq!(results[0].1.report.cycles(), results[1].1.report.cycles());
    });

    // One compiled artifact, both engines checked back in.
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.warm_engines(), 2);
}

/// Two threads hammering the same key through the high-level `run` API:
/// every result must match the fresh single-shot golden bit-for-bit, and
/// the cache must end with at most one engine per thread.
#[test]
fn hammering_one_key_from_two_threads_stays_bit_exact() {
    let suite = rnnasip_rrm::suite();
    let net = &suite[3];
    let input = net.input();
    let golden = KernelBackend::new(OptLevel::IfmTile)
        .run_network(&net.network, &input)
        .unwrap();

    let cache = Arc::new(EngineCache::new());
    thread::scope(|s| {
        for _ in 0..2 {
            let cache = Arc::clone(&cache);
            let network = &net.network;
            let input = &input;
            let golden = &golden;
            s.spawn(move || {
                for _ in 0..50 {
                    let run = cache.run(network, OptLevel::IfmTile, input).unwrap();
                    assert_eq!(run.outputs, golden.outputs);
                    assert_eq!(run.report.cycles(), golden.report.cycles());
                }
            });
        }
    });

    assert_eq!(cache.len(), 1, "one key compiles exactly one artifact");
    assert!(
        cache.warm_engines() <= 2,
        "never more engines than peak concurrency, got {}",
        cache.warm_engines()
    );
}
