//! LTE-in-unlicensed-spectrum coexistence environment.

use rnnasip_fixed::Q3p12;
use rnnasip_rng::StdRng;

/// A synthetic LTE-U / WiFi coexistence scenario, the task of the `[13]`
/// benchmark network (Challita et al.): an LTE-U base station must pick
/// its unlicensed-band duty cycle ahead of time from the recent WiFi
/// activity it has sensed, trading its own airtime against WiFi
/// degradation.
///
/// Per scheduling frame the environment produces a feature vector
/// (recent per-subband WiFi occupancy, diurnal load phase), accepts a
/// duty-cycle decision in `[0, 1]`, and scores it: the utility rewards
/// LTE airtime on idle subbands and penalizes collisions with WiFi
/// bursts. The WiFi load follows a slow periodic pattern plus bursty
/// noise, so a *proactive* (history-aware, i.e. recurrent) policy has an
/// edge over a memoryless one — the paper's motivation for the LSTM.
///
/// # Example
///
/// ```
/// use rnnasip_rrm::env::LteCoexEnv;
///
/// let mut env = LteCoexEnv::new(16, 42);
/// let features = env.features();
/// assert_eq!(features.len(), 32); // 16 subbands x 2 feature planes
/// let utility = env.apply_duty_cycle(0.5);
/// assert!(utility.lte_airtime >= 0.0);
/// env.step();
/// ```
#[derive(Clone, Debug)]
pub struct LteCoexEnv {
    subbands: usize,
    /// Current WiFi occupancy per subband, in `[0, 1]`.
    wifi: Vec<f64>,
    /// Frame counter driving the periodic load.
    frame: u64,
    rng: StdRng,
}

/// Outcome of one frame's duty-cycle decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoexOutcome {
    /// Fraction of the frame the LTE-U cell transmitted collision-free.
    pub lte_airtime: f64,
    /// Fraction of WiFi activity the LTE transmission collided with.
    pub wifi_collision: f64,
    /// Combined utility: airtime minus twice the collision penalty.
    pub utility: f64,
}

impl LteCoexEnv {
    /// Creates an environment with `subbands` sensed subbands.
    ///
    /// # Panics
    ///
    /// Panics if `subbands == 0`.
    pub fn new(subbands: usize, seed: u64) -> Self {
        assert!(subbands > 0, "need at least one subband");
        let mut env = Self {
            subbands,
            wifi: vec![0.0; subbands],
            frame: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        env.step();
        env
    }

    /// Number of sensed subbands.
    pub fn subbands(&self) -> usize {
        self.subbands
    }

    /// Advances one scheduling frame: the WiFi load follows a slow
    /// sinusoidal "diurnal" pattern per subband plus bursty noise.
    pub fn step(&mut self) {
        self.frame += 1;
        for (i, w) in self.wifi.iter_mut().enumerate() {
            let phase = self.frame as f64 / 20.0 + i as f64 * 0.7;
            let base = 0.5 + 0.4 * phase.sin();
            let burst = if self.rng.gen::<f64>() < 0.15 {
                0.4
            } else {
                0.0
            };
            *w = (0.6 * base + 0.3 * *w + burst + 0.05 * self.rng.gen::<f64>()).clamp(0.0, 1.0);
        }
    }

    /// The sensing features: per subband, the current occupancy (scaled
    /// to `[-1, 1]`) and the load trend phase — `2·subbands` values.
    pub fn features(&self) -> Vec<Q3p12> {
        let mut out = Vec::with_capacity(2 * self.subbands);
        for (i, &w) in self.wifi.iter().enumerate() {
            out.push(Q3p12::from_f64(w * 2.0 - 1.0));
            let phase = (self.frame as f64 / 20.0 + i as f64 * 0.7).sin();
            out.push(Q3p12::from_f64(phase));
        }
        out
    }

    /// Applies a duty-cycle decision and scores the frame.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is not finite.
    pub fn apply_duty_cycle(&self, duty: f64) -> CoexOutcome {
        assert!(duty.is_finite(), "duty cycle must be finite");
        let duty = duty.clamp(0.0, 1.0);
        let mean_wifi: f64 = self.wifi.iter().sum::<f64>() / self.subbands as f64;
        // LTE transmits for `duty` of the frame; collisions happen on
        // the occupied fraction.
        let lte_airtime = duty * (1.0 - mean_wifi);
        let wifi_collision = duty * mean_wifi;
        CoexOutcome {
            lte_airtime,
            wifi_collision,
            utility: lte_airtime - 2.0 * wifi_collision,
        }
    }

    /// The oracle duty cycle for the current frame (full airtime when
    /// utility is positive, zero otherwise) — a reference bound for
    /// examples.
    pub fn oracle_duty(&self) -> f64 {
        let mean_wifi: f64 = self.wifi.iter().sum::<f64>() / self.subbands as f64;
        if (1.0 - mean_wifi) > 2.0 * mean_wifi {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = LteCoexEnv::new(8, 1);
        let mut b = LteCoexEnv::new(8, 1);
        for _ in 0..5 {
            assert_eq!(a.features(), b.features());
            a.step();
            b.step();
        }
    }

    #[test]
    fn zero_duty_is_neutral() {
        let env = LteCoexEnv::new(4, 2);
        let out = env.apply_duty_cycle(0.0);
        assert_eq!(out.lte_airtime, 0.0);
        assert_eq!(out.wifi_collision, 0.0);
        assert_eq!(out.utility, 0.0);
    }

    #[test]
    fn oracle_beats_constant_duty_over_time() {
        let mut env = LteCoexEnv::new(8, 3);
        let (mut oracle, mut constant) = (0.0, 0.0);
        for _ in 0..200 {
            oracle += env.apply_duty_cycle(env.oracle_duty()).utility;
            constant += env.apply_duty_cycle(0.5).utility;
            env.step();
        }
        assert!(
            oracle > constant,
            "oracle {oracle:.2} must beat constant 0.5 duty {constant:.2}"
        );
    }

    #[test]
    fn load_oscillates() {
        let mut env = LteCoexEnv::new(4, 4);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..100 {
            let m: f64 = env.wifi.iter().sum::<f64>() / 4.0;
            lo = lo.min(m);
            hi = hi.max(m);
            env.step();
        }
        assert!(hi - lo > 0.3, "load range [{lo:.2}, {hi:.2}] too flat");
    }
}
