//! Downlink power-control environment.

use rnnasip_fixed::Q3p12;
use rnnasip_rng::StdRng;

/// A deterministic interference network of `n` transmitter–receiver
/// pairs on a unit square, with log-distance path loss and slowly
/// evolving Rayleigh-like fading.
///
/// The observation is the flattened `n × n` channel-gain matrix in a
/// normalized log scale — exactly the feature map the power-control
/// networks ([2], [12], [15]) consume. [`sum_rate`](Self::sum_rate)
/// scores a power allocation, so examples can compare the network's
/// decision against baselines (max power, random).
///
/// # Example
///
/// ```
/// use rnnasip_rrm::env::PowerControlEnv;
///
/// let mut env = PowerControlEnv::new(10, 7);
/// let features = env.features();
/// assert_eq!(features.len(), 100);
/// let rate = env.sum_rate(&vec![1.0; 10]);
/// assert!(rate > 0.0);
/// env.step();
/// ```
#[derive(Clone, Debug)]
pub struct PowerControlEnv {
    n: usize,
    /// Direct+cross gains, linear scale: `gain[i*n+j]` = link j→rx i.
    gains: Vec<f64>,
    /// Static path-loss component (linear).
    path_loss: Vec<f64>,
    rng: StdRng,
    /// Receiver noise power (linear).
    noise: f64,
}

impl PowerControlEnv {
    /// Creates an environment with `n` pairs and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one pair");
        let mut rng = StdRng::seed_from_u64(seed);
        // Transmitters and receivers on a unit square; each rx near its tx.
        let tx: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let rx: Vec<(f64, f64)> = tx
            .iter()
            .map(|&(x, y)| {
                (
                    (x + (rng.gen::<f64>() - 0.5) * 0.1).clamp(0.0, 1.0),
                    (y + (rng.gen::<f64>() - 0.5) * 0.1).clamp(0.0, 1.0),
                )
            })
            .collect();
        let mut path_loss = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = rx[i].0 - tx[j].0;
                let dy = rx[i].1 - tx[j].1;
                let d = (dx * dx + dy * dy).sqrt().max(0.01);
                // Log-distance path loss, exponent 3.
                path_loss[i * n + j] = d.powi(-3).min(1e6);
            }
        }
        let mut env = Self {
            n,
            gains: vec![0.0; n * n],
            path_loss,
            rng,
            noise: 1.0,
        };
        env.step();
        env
    }

    /// Number of pairs.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Advances the fading state (call once per scheduling interval).
    pub fn step(&mut self) {
        for (g, &pl) in self.gains.iter_mut().zip(&self.path_loss) {
            // Rayleigh-like power fading: exponential with unit mean,
            // low-pass filtered for temporal correlation.
            let fade = -(1.0 - self.rng.gen::<f64>()).ln();
            *g = if *g == 0.0 {
                pl * fade
            } else {
                0.7 * *g + 0.3 * pl * fade
            };
        }
    }

    /// The normalized log-gain feature map (`n²` Q3.12 values in
    /// roughly `[-4, 4]`).
    pub fn features(&self) -> Vec<Q3p12> {
        self.gains
            .iter()
            .map(|&g| Q3p12::from_f64((g.max(1e-9).log10()).clamp(-4.0, 4.0)))
            .collect()
    }

    /// Sum rate (bits/s/Hz) of a power allocation `p ∈ [0, 1]^n`.
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != n`.
    pub fn sum_rate(&self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.n, "power vector length");
        (0..self.n)
            .map(|i| {
                let signal = self.gains[i * self.n + i] * p[i];
                let interference: f64 = (0..self.n)
                    .filter(|&j| j != i)
                    .map(|j| self.gains[i * self.n + j] * p[j])
                    .sum();
                (1.0 + signal / (self.noise + interference)).log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = PowerControlEnv::new(6, 3).features();
        let b = PowerControlEnv::new(6, 3).features();
        assert_eq!(a, b);
    }

    #[test]
    fn direct_links_beat_cross_links_on_average() {
        let env = PowerControlEnv::new(8, 1);
        let n = env.n();
        let diag: f64 = (0..n).map(|i| env.gains[i * n + i]).sum::<f64>() / n as f64;
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| env.gains[i * n + j])
            .sum::<f64>()
            / (n * (n - 1)) as f64;
        assert!(diag > off, "diag {diag} vs off {off}");
    }

    #[test]
    fn max_power_rate_positive_and_zero_power_rate_zero() {
        let env = PowerControlEnv::new(5, 9);
        assert!(env.sum_rate(&[1.0; 5]) > 0.0);
        assert_eq!(env.sum_rate(&[0.0; 5]), 0.0);
    }

    #[test]
    fn fading_evolves() {
        let mut env = PowerControlEnv::new(4, 11);
        let before = env.features();
        env.step();
        env.step();
        assert_ne!(before, env.features());
    }
}
