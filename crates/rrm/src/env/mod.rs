//! Synthetic radio-resource-management task environments.
//!
//! The paper's motivation (Section I) is RRM decision making under
//! millisecond deadlines: allocating powers, channels and airtime from
//! radio observations. Real base-station traces are proprietary, so
//! these environments generate deterministic synthetic counterparts
//! that exercise the same inference path: observe → extract Q3.12
//! features → run a benchmark network → apply the decision → evaluate.
//!
//! * [`PowerControlEnv`] — downlink power control over an interference
//!   grid (drives the `[12]`/`[2]`-style MLPs),
//! * [`SpectrumAccessEnv`] — multichannel opportunistic access with
//!   Gilbert–Elliott channels (drives the `[14]`/`[17]`-style networks),
//! * [`LteCoexEnv`] — LTE-U/WiFi coexistence with periodic load, the
//!   `[13]` proactive duty-cycle task (where recurrence pays off).

mod ltecoex;
mod power_control;
mod spectrum;

pub use ltecoex::{CoexOutcome, LteCoexEnv};
pub use power_control::PowerControlEnv;
pub use spectrum::SpectrumAccessEnv;
