//! Multichannel opportunistic spectrum-access environment.

use rnnasip_fixed::Q3p12;
use rnnasip_rng::StdRng;

/// `k` independent Gilbert–Elliott channels (two-state Markov: *free* /
/// *busy*) observed through noisy energy detection — the classic
/// dynamic-spectrum-access model the RL papers ([14], [17]) evaluate on.
///
/// Per slot: [`observe`](Self::observe) yields the noisy per-channel
/// availability features (what the LSTM sees),
/// [`attempt`](Self::attempt) transmits on one channel and reports
/// success, [`step`](Self::step) advances the Markov chains.
///
/// # Example
///
/// ```
/// use rnnasip_rrm::env::SpectrumAccessEnv;
///
/// let mut env = SpectrumAccessEnv::new(8, 42);
/// let obs = env.observe();
/// assert_eq!(obs.len(), 8);
/// let _success = env.attempt(0);
/// env.step();
/// ```
#[derive(Clone, Debug)]
pub struct SpectrumAccessEnv {
    /// Per-channel state: `true` = free.
    free: Vec<bool>,
    /// Per-channel P(stay free) and P(become free).
    p_stay_free: Vec<f64>,
    p_become_free: Vec<f64>,
    rng: StdRng,
}

impl SpectrumAccessEnv {
    /// Creates `k` channels with heterogeneous Markov dynamics.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one channel");
        let mut rng = StdRng::seed_from_u64(seed);
        let p_stay_free: Vec<f64> = (0..k).map(|_| 0.6 + 0.35 * rng.gen::<f64>()).collect();
        let p_become_free: Vec<f64> = (0..k).map(|_| 0.1 + 0.4 * rng.gen::<f64>()).collect();
        let free: Vec<bool> = (0..k).map(|_| rng.gen::<f64>() < 0.5).collect();
        Self {
            free,
            p_stay_free,
            p_become_free,
            rng,
        }
    }

    /// Number of channels.
    pub fn k(&self) -> usize {
        self.free.len()
    }

    /// Advances every channel's Markov chain by one slot.
    pub fn step(&mut self) {
        for i in 0..self.free.len() {
            let p = if self.free[i] {
                self.p_stay_free[i]
            } else {
                self.p_become_free[i]
            };
            self.free[i] = self.rng.gen::<f64>() < p;
        }
    }

    /// Noisy energy-detection features: ≈ +1 for free channels, ≈ −1
    /// for busy ones, with observation noise.
    pub fn observe(&mut self) -> Vec<Q3p12> {
        let noise: Vec<f64> = (0..self.free.len())
            .map(|_| (self.rng.gen::<f64>() - 0.5) * 0.4)
            .collect();
        self.free
            .iter()
            .zip(noise)
            .map(|(&f, n)| Q3p12::from_f64(if f { 1.0 + n } else { -1.0 + n }))
            .collect()
    }

    /// Attempts a transmission on `channel`; succeeds iff it is free.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= k`.
    pub fn attempt(&self, channel: usize) -> bool {
        self.free[channel]
    }

    /// Fraction of currently free channels (an oracle statistic used by
    /// examples to contextualize network performance).
    pub fn free_fraction(&self) -> f64 {
        self.free.iter().filter(|&&f| f).count() as f64 / self.free.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SpectrumAccessEnv::new(6, 5);
        let mut b = SpectrumAccessEnv::new(6, 5);
        for _ in 0..10 {
            assert_eq!(a.observe(), b.observe());
            a.step();
            b.step();
        }
    }

    #[test]
    fn observations_separate_free_from_busy() {
        let mut env = SpectrumAccessEnv::new(16, 2);
        let obs = env.observe();
        for (i, o) in obs.iter().enumerate() {
            if env.attempt(i) {
                assert!(o.to_f64() > 0.0, "channel {i}");
            } else {
                assert!(o.to_f64() < 0.0, "channel {i}");
            }
        }
    }

    #[test]
    fn chains_mix_over_time() {
        let mut env = SpectrumAccessEnv::new(8, 3);
        let initial = env.free.clone();
        let mut changed = false;
        for _ in 0..50 {
            env.step();
            if env.free != initial {
                changed = true;
                break;
            }
        }
        assert!(changed, "channel states never changed");
    }
}
