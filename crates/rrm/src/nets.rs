//! The ten benchmark networks.

use crate::weights;
use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, Network, Stage};
use rnnasip_rng::StdRng;

/// Kernel family of a benchmark network (the Fig. 3 legend groups).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NetKind {
    /// LSTM-dominated (optionally with FC/CNN stages).
    Lstm,
    /// Fully-connected only.
    Fc,
    /// CNN-dominated.
    Cnn,
}

impl NetKind {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            NetKind::Lstm => "LSTM/FC",
            NetKind::Fc => "Fully-Connected NN",
            NetKind::Cnn => "CNN",
        }
    }
}

/// One entry of the RRM benchmark suite.
#[derive(Clone, Debug)]
pub struct BenchmarkNet {
    /// Citation tag used in the paper's figures (e.g. `"[13]"`).
    pub tag: &'static str,
    /// Human-readable identifier (first author + year).
    pub id: &'static str,
    /// One-line description of the RRM task.
    pub task: &'static str,
    /// Kernel family.
    pub kind: NetKind,
    /// The network with seeded synthetic weights.
    pub network: Network,
}

impl BenchmarkNet {
    /// A deterministic input sequence for one inference.
    pub fn input(&self) -> Vec<Vec<Q3p12>> {
        crate::weights::seeded_sequence(
            self.network.n_in(),
            self.network.seq_len(),
            0xBEEF ^ self.tag.len() as u64 ^ (self.id.len() as u64) << 8,
        )
    }
}

/// Builds the full ten-network suite in the order of the paper's Fig. 3.
///
/// Topologies are reconstructions from the cited papers (see crate
/// docs); seeds are fixed so repeated calls are identical.
///
/// # Example
///
/// ```
/// let suite = rnnasip_rrm::suite();
/// assert_eq!(suite.len(), 10);
/// let total_macs: u64 = suite.iter().map(|n| n.network.mac_count()).sum();
/// // The paper's whole-suite workload is ~1.6M MACs.
/// assert!(total_macs > 1_000_000);
/// ```
pub fn suite() -> Vec<BenchmarkNet> {
    vec![
        challita2017(),
        naparstek2019(),
        ahmed2019(),
        eisen2019(),
        lee2018(),
        nasir2018(),
        sun2017(),
        ye2018(),
        yu2017(),
        wang2018(),
    ]
}

/// [13] Challita, Dong, Saad — proactive resource management for LTE in
/// unlicensed spectrum: LSTM over a window of traffic/occupancy
/// features, FC head for the airtime allocation.
fn challita2017() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(13);
    let lstm = weights::lstm(&mut r, 32, 64);
    let head = weights::fc(&mut r, 32, 64, Act::Relu);
    let out = weights::fc(&mut r, 16, 32, Act::Sigmoid);
    BenchmarkNet {
        tag: "[13]",
        id: "challita2017",
        task: "LTE-U proactive airtime allocation",
        kind: NetKind::Lstm,
        network: Network::new(
            "[13] challita2017",
            vec![
                Stage::Lstm {
                    layer: lstm,
                    steps: 10,
                },
                Stage::Fc(head),
                Stage::Fc(out),
            ],
        ),
    }
}

/// [14] Naparstek, Cohen — deep multi-user RL for dynamic spectrum
/// access: a small LSTM whose activations dominate (33.6% of cycles in
/// the paper's analysis), which is why its tiling gain is weak (1.30×).
fn naparstek2019() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(14);
    let lstm = weights::lstm(&mut r, 8, 32);
    let out = weights::fc(&mut r, 16, 32, Act::Sigmoid);
    BenchmarkNet {
        tag: "[14]",
        id: "naparstek2019",
        task: "distributed dynamic spectrum access",
        kind: NetKind::Lstm,
        network: Network::new(
            "[14] naparstek2019",
            vec![
                Stage::Lstm {
                    layer: lstm,
                    steps: 8,
                },
                Stage::Fc(out),
            ],
        ),
    }
}

/// [3] Ahmed, Tabassum, Hossain — deep learning for radio resource
/// allocation in multi-cell networks.
fn ahmed2019() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(3);
    BenchmarkNet {
        tag: "[3]",
        id: "ahmed2019",
        task: "multi-cell resource allocation",
        kind: NetKind::Fc,
        network: Network::new(
            "[3] ahmed2019",
            vec![
                Stage::Fc(weights::fc(&mut r, 360, 120, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 360, 360, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 120, 360, Act::None)),
            ],
        ),
    }
}

/// [33] Eisen et al. — learning optimal resource allocations: a tiny
/// MLP (the paper's weakest tiling case, 1.07×, and lowest overall
/// speedup, ~5.4×, because per-layer overheads dominate).
fn eisen2019() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(33);
    BenchmarkNet {
        tag: "[33]",
        id: "eisen2019",
        task: "wireless capacity allocation",
        kind: NetKind::Fc,
        network: Network::new(
            "[33] eisen2019",
            vec![
                Stage::Fc(weights::fc(&mut r, 20, 10, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 20, 20, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 10, 20, Act::None)),
            ],
        ),
    }
}

/// [15] Lee, Kim, Cho — deep power control with a CNN over the channel
/// gain matrix.
fn lee2018() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(15);
    let c1 = weights::conv(&mut r, 1, 10, 10, 12, 3, 3, Act::Relu);
    let c2 = weights::conv(&mut r, 12, 8, 8, 24, 3, 3, Act::Relu);
    let head_in = 24 * 6 * 6;
    BenchmarkNet {
        tag: "[15]",
        id: "lee2018",
        task: "CNN transmit power control",
        kind: NetKind::Cnn,
        network: Network::new(
            "[15] lee2018",
            vec![
                Stage::Conv(c1),
                Stage::Conv(c2),
                Stage::Fc(weights::fc(&mut r, 40, head_in, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 10, 40, Act::Sigmoid)),
            ],
        ),
    }
}

/// [12] Nasir, Guo — deep RL for distributed dynamic power allocation.
fn nasir2018() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(12);
    BenchmarkNet {
        tag: "[12]",
        id: "nasir2018",
        task: "distributed dynamic power allocation",
        kind: NetKind::Fc,
        network: Network::new(
            "[12] nasir2018",
            vec![
                Stage::Fc(weights::fc(&mut r, 250, 100, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 250, 250, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 120, 250, Act::None)),
            ],
        ),
    }
}

/// [2] Sun et al. — "learning to optimize": an MLP approximating WMMSE
/// power control.
fn sun2017() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(2);
    BenchmarkNet {
        tag: "[2]",
        id: "sun2017",
        task: "WMMSE-approximating power control",
        kind: NetKind::Fc,
        network: Network::new(
            "[2] sun2017",
            vec![
                Stage::Fc(weights::fc(&mut r, 250, 80, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 250, 250, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 80, 250, Act::None)),
            ],
        ),
    }
}

/// [9] Ye, Li — deep RL for resource allocation in V2V communications
/// (the suite's largest MLP; its big feature maps tile best, matching
/// the paper's highest per-network speedup).
fn ye2018() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(9);
    BenchmarkNet {
        tag: "[9]",
        id: "ye2018",
        task: "V2V latency-constrained allocation",
        kind: NetKind::Fc,
        network: Network::new(
            "[9] ye2018",
            vec![
                Stage::Fc(weights::fc(&mut r, 500, 82, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 250, 500, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 120, 250, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 60, 120, Act::None)),
            ],
        ),
    }
}

/// [11] Yu, Wang, Liew — deep-RL multiple access for heterogeneous
/// wireless networks.
fn yu2017() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(11);
    BenchmarkNet {
        tag: "[11]",
        id: "yu2017",
        task: "heterogeneous-network MAC",
        kind: NetKind::Fc,
        network: Network::new(
            "[11] yu2017",
            vec![
                Stage::Fc(weights::fc(&mut r, 360, 120, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 360, 360, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 60, 360, Act::None)),
            ],
        ),
    }
}

/// [17] Wang et al. — deep RL for dynamic multichannel access.
fn wang2018() -> BenchmarkNet {
    let mut r = StdRng::seed_from_u64(17);
    BenchmarkNet {
        tag: "[17]",
        id: "wang2018",
        task: "dynamic multichannel access",
        kind: NetKind::Fc,
        network: Network::new(
            "[17] wang2018",
            vec![
                Stage::Fc(weights::fc(&mut r, 200, 32, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 200, 200, Act::Relu)),
                Stage::Fc(weights::fc(&mut r, 16, 200, Act::None)),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_networks_in_figure_order() {
        let s = suite();
        let tags: Vec<_> = s.iter().map(|n| n.tag).collect();
        assert_eq!(
            tags,
            vec!["[13]", "[14]", "[3]", "[33]", "[15]", "[12]", "[2]", "[9]", "[11]", "[17]"]
        );
    }

    #[test]
    fn suite_total_macs_matches_papers_scale() {
        let total: u64 = suite().iter().map(|n| n.network.mac_count()).sum();
        // Table I: 1 621 kMAC-instructions on packed pairs = ~1.6M MACs.
        assert!(
            (1_200_000..2_100_000).contains(&total),
            "suite total {total} MACs out of the paper's scale"
        );
    }

    #[test]
    fn lstm_nets_have_high_activation_fraction() {
        let s = suite();
        let naparstek = &s[1];
        // acts per MAC must be much higher than in the FC nets.
        let ratio = naparstek.network.act_count() as f64 / naparstek.network.mac_count() as f64;
        assert!(ratio > 0.02, "activation ratio {ratio}");
        let ye = &s[7];
        let fc_ratio = ye.network.act_count() as f64 / ye.network.mac_count() as f64;
        assert!(fc_ratio < ratio / 5.0);
    }

    #[test]
    fn inputs_are_deterministic_and_shaped() {
        for net in suite() {
            let a = net.input();
            let b = net.input();
            assert_eq!(a, b, "{}", net.id);
            assert_eq!(a.len(), net.network.seq_len());
            assert_eq!(a[0].len(), net.network.n_in());
        }
    }

    #[test]
    fn forward_passes_run_on_golden_models() {
        for net in suite() {
            let out = net.network.forward_fixed(&net.input());
            assert_eq!(out.len(), net.network.n_out(), "{}", net.id);
        }
    }
}
