//! The RRM benchmark suite of the paper (Section II-C) and synthetic
//! radio-resource-management task environments.
//!
//! The suite consists of ten neural networks drawn from the recent RRM
//! literature; the paper evaluates every optimization level on all of
//! them (Table I aggregates the whole suite, Fig. 3 shows per-network
//! speedups). The exact topologies live in the project report [34],
//! which is not redistributable — [`suite`] reconstructs representative
//! configurations from the cited source papers, preserving the
//! properties the evaluation depends on (see `DESIGN.md`).
//!
//! Weights are synthetic but deterministic (seeded per network): cycle
//! counts depend only on topology, and the bit-exactness harness needs
//! *some* concrete values to verify against the golden models.
//!
//! The [`env`] module provides small deterministic RRM task simulators
//! (downlink power control, multichannel spectrum access) that the
//! examples use to drive the networks with realistic feature streams,
//! and [`EngineCache`] gives their decision loops compile-once /
//! run-many inference (one warm [`rnnasip_core::Engine`] per network
//! and optimization level).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
mod infer;
mod nets;
pub mod traffic;
mod weights;

pub use infer::{CacheEngine, EngineCache};
pub use nets::{suite, BenchmarkNet, NetKind};
pub use weights::{seeded_fc_layer, seeded_input, seeded_sequence};
