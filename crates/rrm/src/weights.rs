//! Deterministic synthetic weight and input generation.

use rnnasip_fixed::Q3p12;
use rnnasip_nn::{Act, Conv2dLayer, FcLayer, LstmLayer, Matrix};
use rnnasip_rng::StdRng;

/// Uniform Q3.12 value in `[-scale, scale]`.
fn q(rng: &mut StdRng, scale: f64) -> Q3p12 {
    Q3p12::from_f64((rng.gen::<f64>() * 2.0 - 1.0) * scale)
}

pub(crate) fn vec_q(rng: &mut StdRng, n: usize, scale: f64) -> Vec<Q3p12> {
    (0..n).map(|_| q(rng, scale)).collect()
}

/// A weight matrix scaled like Xavier initialisation, which keeps the
/// Q3.12 activations well inside the representable range across deep
/// stacks (the property that lets the paper skip retraining).
pub(crate) fn matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let scale = (2.0 / (rows + cols) as f64).sqrt() * 2.0;
    Matrix::new(rows, cols, vec_q(rng, rows * cols, scale.min(1.0)))
}

pub(crate) fn fc(rng: &mut StdRng, n_out: usize, n_in: usize, act: Act) -> FcLayer {
    FcLayer::new(matrix(rng, n_out, n_in), vec_q(rng, n_out, 0.25), act)
}

pub(crate) fn lstm(rng: &mut StdRng, m: usize, n: usize) -> LstmLayer {
    let wx = [
        matrix(rng, n, m),
        matrix(rng, n, m),
        matrix(rng, n, m),
        matrix(rng, n, m),
    ];
    let wh = [
        matrix(rng, n, n),
        matrix(rng, n, n),
        matrix(rng, n, n),
        matrix(rng, n, n),
    ];
    // Positive forget bias, the usual LSTM initialisation.
    let bias = [
        vec_q(rng, n, 0.1),
        (0..n).map(|_| Q3p12::from_f64(1.0)).collect(),
        vec_q(rng, n, 0.1),
        vec_q(rng, n, 0.1),
    ];
    LstmLayer::new(wx, wh, bias)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn conv(
    rng: &mut StdRng,
    in_ch: usize,
    h: usize,
    w: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    act: Act,
) -> Conv2dLayer {
    Conv2dLayer::new(
        in_ch,
        h,
        w,
        out_ch,
        kh,
        kw,
        matrix(rng, out_ch, in_ch * kh * kw),
        vec_q(rng, out_ch, 0.25),
        act,
    )
}

/// A seeded fully-connected layer with ReLU — handy for quickstarts and
/// doctests.
///
/// # Example
///
/// ```
/// let layer = rnnasip_rrm::seeded_fc_layer(16, 8, 42);
/// assert_eq!(layer.n_in(), 16);
/// assert_eq!(layer.n_out(), 8);
/// ```
pub fn seeded_fc_layer(n_in: usize, n_out: usize, seed: u64) -> FcLayer {
    let mut rng = StdRng::seed_from_u64(seed);
    fc(&mut rng, n_out, n_in, Act::Relu)
}

/// A seeded Q3.12 input vector in `[-1, 1]`.
pub fn seeded_input(n: usize, seed: u64) -> Vec<Q3p12> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec_q(&mut rng, n, 1.0)
}

/// A seeded input sequence (`steps` vectors of width `n`).
pub fn seeded_sequence(n: usize, steps: usize, seed: u64) -> Vec<Vec<Q3p12>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps).map(|_| vec_q(&mut rng, n, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = seeded_input(32, 7);
        let b = seeded_input(32, 7);
        assert_eq!(a, b);
        let c = seeded_input(32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_stay_in_range() {
        let layer = seeded_fc_layer(100, 50, 1);
        for w in layer.weights().data() {
            assert!(w.to_f64().abs() <= 1.0);
        }
    }
}
