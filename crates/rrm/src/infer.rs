//! Cached compile-once / run-many inference for RRM decision loops.
//!
//! RRM environments call their policy network every scheduling interval;
//! recompiling the kernel program and re-staging every weight matrix per
//! step would dwarf the simulated inference itself. [`EngineCache`]
//! keeps one warm [`Engine`] per `(network name, OptLevel)` so each step
//! pays only input patching, simulation, and a dirty-block memory
//! restore.

use rnnasip_core::{CoreError, Engine, KernelBackend, NetworkRun, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Network;
use std::collections::HashMap;

/// A pool of warm [`Engine`]s keyed by `(network name, OptLevel)`.
///
/// Networks are compiled on first use and reused afterwards; the cache
/// assumes a name identifies one fixed set of weights (true for the
/// [`suite`](crate::suite) and for any loop driving a single model).
///
/// # Example
///
/// ```
/// use rnnasip_core::OptLevel;
/// use rnnasip_rrm::EngineCache;
///
/// let net = &rnnasip_rrm::suite()[3]; // eisen2019, a tiny MLP
/// let mut cache = EngineCache::new();
/// let input = net.input();
/// let a = cache.run(&net.network, OptLevel::IfmTile, &input)?;
/// let b = cache.run(&net.network, OptLevel::IfmTile, &input)?; // warm
/// assert_eq!(a.outputs, b.outputs);
/// assert_eq!(cache.len(), 1);
/// # Ok::<(), rnnasip_core::CoreError>(())
/// ```
#[derive(Default)]
pub struct EngineCache {
    engines: HashMap<(String, OptLevel), Engine>,
}

impl EngineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of compiled engines currently cached.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The warm engine for `(net, level)`, compiling on first use.
    ///
    /// # Errors
    ///
    /// Compilation errors ([`CoreError`]) on a cache miss.
    pub fn engine(&mut self, net: &Network, level: OptLevel) -> Result<&mut Engine, CoreError> {
        let key = (net.name().to_string(), level);
        if !self.engines.contains_key(&key) {
            let compiled = KernelBackend::new(level).compile_network(net)?;
            self.engines.insert(key.clone(), Engine::new(compiled));
        }
        Ok(self.engines.get_mut(&key).expect("just inserted"))
    }

    /// Runs one inference through the cached engine for `(net, level)`.
    ///
    /// # Errors
    ///
    /// Compilation errors on first use, shape/simulation errors on every
    /// run ([`CoreError`]).
    pub fn run(
        &mut self,
        net: &Network,
        level: OptLevel,
        sequence: &[Vec<Q3p12>],
    ) -> Result<NetworkRun, CoreError> {
        self.engine(net, level)?.run(sequence)
    }

    /// Like [`run`](Self::run) with the watchdog budget overridden for
    /// this call — for decision loops with a hard latency ceiling. The
    /// cached default is `rnnasip_core::DEFAULT_WATCHDOG_CYCLES`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); exceeding `max_cycles` is a
    /// simulation watchdog error, after which the cached engine has
    /// already healed and stays warm.
    pub fn run_budgeted(
        &mut self,
        net: &Network,
        level: OptLevel,
        sequence: &[Vec<Q3p12>],
        max_cycles: u64,
    ) -> Result<NetworkRun, CoreError> {
        self.engine(net, level)?.run_budgeted(sequence, max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_compiles_once_per_network_and_level() {
        let suite = crate::suite();
        let net = &suite[3]; // eisen2019: smallest, fastest to compile
        let mut cache = EngineCache::new();
        let input = net.input();
        let warm = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert_eq!(cache.len(), 1);
        cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert_eq!(cache.len(), 1);
        cache.run(&net.network, OptLevel::Xpulp, &input).unwrap();
        assert_eq!(cache.len(), 2);

        // Cached runs match the fresh single-shot path bit-for-bit.
        let fresh = KernelBackend::new(OptLevel::IfmTile)
            .run_network(&net.network, &input)
            .unwrap();
        assert_eq!(warm.outputs, fresh.outputs);
        assert_eq!(warm.report.cycles(), fresh.report.cycles());
    }

    #[test]
    fn budgeted_runs_share_the_warm_engine() {
        let suite = crate::suite();
        let net = &suite[3];
        let mut cache = EngineCache::new();
        let input = net.input();
        let free = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        // An ample explicit budget changes nothing; a one-cycle budget
        // trips the watchdog but leaves the engine healed and cached.
        let ample = cache
            .run_budgeted(&net.network, OptLevel::IfmTile, &input, 1_000_000)
            .unwrap();
        assert_eq!(free.outputs, ample.outputs);
        assert_eq!(free.report.cycles(), ample.report.cycles());
        assert!(cache
            .run_budgeted(&net.network, OptLevel::IfmTile, &input, 1)
            .is_err());
        let healed = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert_eq!(free.outputs, healed.outputs);
        assert_eq!(free.report.cycles(), healed.report.cycles());
        assert_eq!(cache.len(), 1);
    }
}
