//! Cached compile-once / run-many inference for RRM decision loops.
//!
//! RRM environments call their policy network every scheduling interval;
//! recompiling the kernel program and re-staging every weight matrix per
//! step would dwarf the simulated inference itself. [`EngineCache`]
//! keeps warm [`Engine`]s per `(network name, OptLevel)` so each step
//! pays only input patching, simulation, and a dirty-block memory
//! restore.
//!
//! The cache is **thread-safe** (`&self` everywhere): compiled artifacts
//! live in a shared compile-once map, and engines are handed out through
//! a checkout/check-in discipline — [`checkout`](EngineCache::checkout)
//! moves an idle engine (or instantiates a fresh one from the cached
//! artifact) out of the cache, and dropping the [`CacheEngine`] guard
//! returns it. Two threads hammering the same `(network, level)` key can
//! therefore never alias one simulator `Machine`: each holds its own
//! engine, both warmed from the same compiled artifact, and both land
//! back in the idle pool for later reuse. This is what lets one
//! `EngineCache` back a multi-threaded server (`rnnasip_core::serve`)
//! or several environment loops at once.

use rnnasip_core::{CompiledNetwork, CoreError, Engine, KernelBackend, NetworkRun, OptLevel};
use rnnasip_fixed::Q3p12;
use rnnasip_nn::Network;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

type Key = (String, OptLevel);

/// Recovers the guard from a poisoned lock — a panicked borrower must
/// not wedge every other thread's inference; the maps stay structurally
/// consistent across a panic boundary (at worst one checked-out engine
/// is never returned).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A thread-safe pool of warm [`Engine`]s keyed by
/// `(network name, OptLevel)`.
///
/// Networks are compiled on first use and reused afterwards; the cache
/// assumes a name identifies one fixed set of weights (true for the
/// [`suite`](crate::suite) and for any loop driving a single model).
///
/// # Example
///
/// ```
/// use rnnasip_core::OptLevel;
/// use rnnasip_rrm::EngineCache;
///
/// let net = &rnnasip_rrm::suite()[3]; // eisen2019, a tiny MLP
/// let cache = EngineCache::new();
/// let input = net.input();
/// let a = cache.run(&net.network, OptLevel::IfmTile, &input)?;
/// let b = cache.run(&net.network, OptLevel::IfmTile, &input)?; // warm
/// assert_eq!(a.outputs, b.outputs);
/// assert_eq!(cache.len(), 1);
/// # Ok::<(), rnnasip_core::CoreError>(())
/// ```
#[derive(Default)]
pub struct EngineCache {
    /// Compile-once artifacts, one per key; cloned out cheaply (the
    /// image is `Arc`-shared) whenever a fresh engine is needed.
    compiled: Mutex<HashMap<Key, CompiledNetwork>>,
    /// Checked-in engines awaiting reuse. More than one engine per key
    /// exists only if runs genuinely overlapped in time.
    idle: Mutex<HashMap<Key, Vec<Engine>>>,
    /// Monotone count of compilations performed — the witness the
    /// prewarm tests use to prove a warmed cache serves without paying
    /// compile latency inside the measurement window.
    compiles: AtomicU64,
    /// Whether engines handed out by this cache arm ABFT guards
    /// ([`Engine::set_guards`]). Guarded engines that return a run with
    /// a tripped guard are *quarantined* on check-in (dropped instead of
    /// pooled), so latent silent corruption can never be served to the
    /// next borrower — the compiled artifact stays clean, and the next
    /// checkout instantiates a fresh engine from it.
    guards: bool,
    /// Engines quarantined (dropped on check-in) after a guard trip.
    quarantined: AtomicU64,
}

impl EngineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache whose engines run with ABFT guards armed: every
    /// run's report carries a guard section, and an engine whose run
    /// trips a guard is quarantined on check-in instead of returning to
    /// the idle pool.
    pub fn guarded() -> Self {
        Self {
            guards: true,
            ..Self::default()
        }
    }

    /// Whether this cache's engines arm ABFT guards.
    pub fn guards_enabled(&self) -> bool {
        self.guards
    }

    /// Engines quarantined after a guard-tripped run over the cache's
    /// lifetime (always 0 on unguarded caches).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Number of networks compiled so far (artifacts, not engines).
    pub fn len(&self) -> usize {
        lock(&self.compiled).len()
    }

    /// Whether nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        lock(&self.compiled).is_empty()
    }

    /// Number of idle (checked-in) warm engines across all keys.
    pub fn warm_engines(&self) -> usize {
        lock(&self.idle).values().map(Vec::len).sum()
    }

    /// Total compilations performed over the cache's lifetime. A warmed
    /// cache serving only prewarmed `(network, level)` keys holds this
    /// constant — no compile latency on the serving path.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Warms the cache for every network in `nets` at `level`:
    /// compiles each missing artifact and checks in one idle engine per
    /// key, so later [`checkout`](Self::checkout)/[`run`](Self::run)
    /// calls pay neither compile nor engine-instantiation latency.
    /// Returns the number of networks that were newly compiled
    /// (idempotent: a second prewarm returns 0).
    ///
    /// # Errors
    ///
    /// The first compilation failure ([`CoreError`]); earlier networks
    /// stay warmed.
    pub fn prewarm<'n>(
        &self,
        nets: impl IntoIterator<Item = &'n Network>,
        level: OptLevel,
    ) -> Result<usize, CoreError> {
        let mut fresh = 0;
        for net in nets {
            let key = (net.name().to_string(), level);
            let before = self.compiles();
            let compiled = self.compiled_for(net, level)?;
            if self.compiles() > before {
                fresh += 1;
            }
            let mut idle = lock(&self.idle);
            let engines = idle.entry(key).or_default();
            if engines.is_empty() {
                engines.push(self.instantiate(compiled));
            }
        }
        Ok(fresh)
    }

    /// A fresh engine from `compiled`, guards armed per the cache's
    /// configuration.
    fn instantiate(&self, compiled: CompiledNetwork) -> Engine {
        let mut engine = Engine::new(compiled);
        engine.set_guards(self.guards);
        engine
    }

    /// The compiled artifact for `(net, level)`, compiling on first use.
    ///
    /// # Errors
    ///
    /// Compilation errors ([`CoreError`]) on a cache miss.
    fn compiled_for(&self, net: &Network, level: OptLevel) -> Result<CompiledNetwork, CoreError> {
        let key = (net.name().to_string(), level);
        let mut cache = lock(&self.compiled);
        if let Some(hit) = cache.get(&key) {
            return Ok(hit.clone());
        }
        // Compiling under the lock serializes concurrent first requests
        // so the artifact is built exactly once per key.
        let compiled = KernelBackend::new(level).compile_network(net)?;
        self.compiles.fetch_add(1, Ordering::Relaxed);
        cache.insert(key, compiled.clone());
        Ok(compiled)
    }

    /// Checks out a warm engine for `(net, level)`, compiling on first
    /// use and instantiating a fresh engine when every cached one is
    /// already lent out. The guard checks the engine back in on drop.
    ///
    /// # Errors
    ///
    /// Compilation errors ([`CoreError`]) on a cache miss.
    pub fn checkout(&self, net: &Network, level: OptLevel) -> Result<CacheEngine<'_>, CoreError> {
        let key = (net.name().to_string(), level);
        let idle = lock(&self.idle).get_mut(&key).and_then(Vec::pop);
        let engine = match idle {
            Some(engine) => engine,
            None => self.instantiate(self.compiled_for(net, level)?),
        };
        Ok(CacheEngine {
            cache: self,
            key,
            engine: Some(engine),
        })
    }

    /// Runs one inference through a cached engine for `(net, level)`.
    ///
    /// # Errors
    ///
    /// Compilation errors on first use, shape/simulation errors on every
    /// run ([`CoreError`]).
    pub fn run(
        &self,
        net: &Network,
        level: OptLevel,
        sequence: &[Vec<Q3p12>],
    ) -> Result<NetworkRun, CoreError> {
        self.checkout(net, level)?.run(sequence)
    }

    /// Like [`run`](Self::run) with the watchdog budget overridden for
    /// this call — for decision loops with a hard latency ceiling. The
    /// cached default is `rnnasip_core::DEFAULT_WATCHDOG_CYCLES`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); exceeding `max_cycles` is a
    /// simulation watchdog error, after which the cached engine has
    /// already healed and stays warm.
    pub fn run_budgeted(
        &self,
        net: &Network,
        level: OptLevel,
        sequence: &[Vec<Q3p12>],
        max_cycles: u64,
    ) -> Result<NetworkRun, CoreError> {
        self.checkout(net, level)?
            .run_budgeted(sequence, max_cycles)
    }
}

/// A checked-out engine; derefs to [`Engine`] and returns to its
/// [`EngineCache`]'s idle pool on drop.
pub struct CacheEngine<'a> {
    cache: &'a EngineCache,
    key: Key,
    engine: Option<Engine>,
}

impl Deref for CacheEngine<'_> {
    type Target = Engine;

    fn deref(&self) -> &Engine {
        self.engine.as_ref().expect("present until drop")
    }
}

impl DerefMut for CacheEngine<'_> {
    fn deref_mut(&mut self) -> &mut Engine {
        self.engine.as_mut().expect("present until drop")
    }
}

impl Drop for CacheEngine<'_> {
    /// Checks the engine back into the idle pool — unless its last run
    /// tripped an ABFT guard, in which case the engine's memory may hold
    /// silent corruption a rewind cannot clear. Such an engine is
    /// quarantined (dropped); the next checkout instantiates a fresh one
    /// from the clean cached artifact, so the corruption is contained to
    /// the borrower that observed it.
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            if engine.last_guard_failed() {
                self.cache.quarantined.fetch_add(1, Ordering::Relaxed);
                return;
            }
            lock(&self.cache.idle)
                .entry(self.key.clone())
                .or_default()
                .push(engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_compiles_once_per_network_and_level() {
        let suite = crate::suite();
        let net = &suite[3]; // eisen2019: smallest, fastest to compile
        let cache = EngineCache::new();
        let input = net.input();
        let warm = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert_eq!(cache.len(), 1);
        cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert_eq!(cache.len(), 1);
        cache.run(&net.network, OptLevel::Xpulp, &input).unwrap();
        assert_eq!(cache.len(), 2);
        // Serial use keeps exactly one engine per key checked in.
        assert_eq!(cache.warm_engines(), 2);

        // Cached runs match the fresh single-shot path bit-for-bit.
        let fresh = KernelBackend::new(OptLevel::IfmTile)
            .run_network(&net.network, &input)
            .unwrap();
        assert_eq!(warm.outputs, fresh.outputs);
        assert_eq!(warm.report.cycles(), fresh.report.cycles());
    }

    #[test]
    fn budgeted_runs_share_the_warm_engine() {
        let suite = crate::suite();
        let net = &suite[3];
        let cache = EngineCache::new();
        let input = net.input();
        let free = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        // An ample explicit budget changes nothing; a one-cycle budget
        // trips the watchdog but leaves the engine healed and cached.
        let ample = cache
            .run_budgeted(&net.network, OptLevel::IfmTile, &input, 1_000_000)
            .unwrap();
        assert_eq!(free.outputs, ample.outputs);
        assert_eq!(free.report.cycles(), ample.report.cycles());
        assert!(cache
            .run_budgeted(&net.network, OptLevel::IfmTile, &input, 1)
            .is_err());
        let healed = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert_eq!(free.outputs, healed.outputs);
        assert_eq!(free.report.cycles(), healed.report.cycles());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.warm_engines(), 1);
    }

    #[test]
    fn prewarmed_cache_serves_the_suite_with_zero_additional_compiles() {
        let suite = crate::suite();
        let cache = EngineCache::new();
        let fresh = cache
            .prewarm(suite.iter().map(|b| &b.network), OptLevel::IfmTile)
            .unwrap();
        assert_eq!(fresh, 10);
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.warm_engines(), 10);
        assert_eq!(cache.compiles(), 10);

        // Prewarm is idempotent: nothing new to compile or instantiate.
        let again = cache
            .prewarm(suite.iter().map(|b| &b.network), OptLevel::IfmTile)
            .unwrap();
        assert_eq!(again, 0);
        assert_eq!(cache.compiles(), 10);
        assert_eq!(cache.warm_engines(), 10);

        // Serving the whole suite afterwards triggers zero compiles —
        // the front-end's measurement window never pays compile
        // latency.
        for net in &suite {
            cache
                .run(&net.network, OptLevel::IfmTile, &net.input())
                .unwrap();
        }
        assert_eq!(cache.compiles(), 10);
        assert_eq!(cache.len(), 10);
        // A different level is a different shard: compiling it is new.
        cache
            .run(&suite[3].network, OptLevel::Xpulp, &suite[3].input())
            .unwrap();
        assert_eq!(cache.compiles(), 11);
    }

    /// The check-in regression: a guarded engine whose run trips an ABFT
    /// guard must be quarantined on drop — checking the corrupted engine
    /// back in would hand silent corruption (which survives the
    /// per-run rewind) to the next borrower.
    #[test]
    fn guard_tripped_engine_is_quarantined_not_checked_in() {
        use rnnasip_core::{Fault, FaultPlan, FaultSite};

        let suite = crate::suite();
        let net = &suite[3]; // eisen2019
        let input = net.input();
        let cache = EngineCache::guarded();
        assert!(cache.guards_enabled());
        let golden = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert!(!golden.report.guard_failed(), "clean run must not trip");
        assert_eq!(cache.warm_engines(), 1);

        // A *silent* bias-word flip: evades the dirty-block rewind, so a
        // checked-in engine would stay corrupted for its next borrower.
        let mut engine = cache.checkout(&net.network, OptLevel::IfmTile).unwrap();
        let bias = engine.compiled().guards()[0].region.bias32;
        engine.inject_faults(&FaultPlan::new().with_fault(Fault {
            at_instret: 0,
            site: FaultSite::MemBit {
                addr: bias,
                bit: 4,
                silent: true,
            },
        }));
        let flagged = engine.run(&input).unwrap();
        assert!(flagged.report.guard_failed(), "the guard must trip");
        assert!(engine.last_guard_failed());
        drop(engine);

        // Quarantined: the idle pool is empty, not holding the corrupted
        // engine.
        assert_eq!(cache.warm_engines(), 0, "corrupted engine checked in");
        assert_eq!(cache.quarantined(), 1);

        // The next run instantiates fresh from the clean artifact — no
        // recompile, no residual corruption, bit-exact outputs.
        let healed = cache.run(&net.network, OptLevel::IfmTile, &input).unwrap();
        assert!(!healed.report.guard_failed());
        assert_eq!(healed.outputs, golden.outputs);
        assert_eq!(healed.report.cycles(), golden.report.cycles());
        assert_eq!(cache.len(), 1, "no recompilation was needed");
        assert_eq!(cache.warm_engines(), 1, "the clean engine pools again");
    }

    #[test]
    fn checkout_holds_a_private_engine() {
        let suite = crate::suite();
        let net = &suite[3];
        let cache = EngineCache::new();
        let input = net.input();
        let mut a = cache.checkout(&net.network, OptLevel::IfmTile).unwrap();
        let mut b = cache.checkout(&net.network, OptLevel::IfmTile).unwrap();
        // Two concurrent checkouts of one key are distinct machines from
        // one compiled artifact.
        assert!(!std::ptr::eq(a.machine(), b.machine()));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.warm_engines(), 0);
        let ra = a.run(&input).unwrap();
        let rb = b.run(&input).unwrap();
        assert_eq!(ra.outputs, rb.outputs);
        assert_eq!(ra.report.cycles(), rb.report.cycles());
        drop(a);
        drop(b);
        assert_eq!(cache.warm_engines(), 2);
        // The next checkout reuses a checked-in engine, not a third one.
        drop(cache.checkout(&net.network, OptLevel::IfmTile).unwrap());
        assert_eq!(cache.warm_engines(), 2);
    }
}
