//! The activity-based power model.

use crate::activity::Activity;

/// Per-unit power contributions in mW.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Clock tree, state and leakage floor.
    pub clock: f64,
    /// Instruction fetch, decode and register file (per instruction).
    pub frontend: f64,
    /// Scalar ALU / branch work.
    pub alu: f64,
    /// 16-bit MAC units (the dot-product datapath).
    pub mac: f64,
    /// Load/store unit and TCDM access.
    pub lsu: f64,
    /// Total power.
    pub total: f64,
}

/// Activity-based power model: `P = f · (E_clk + Σ Eᵢ·activityᵢ/cycle)`.
///
/// # Calibration
///
/// The per-event energies below were calibrated on the whole RRM
/// benchmark suite simulated at optimization levels *a* and *e*:
///
/// * baseline (RV32IMC) activity → **1.73 mW**,
/// * fully-extended activity → **2.61 mW**,
///
/// at 380 MHz / 0.65 V, the paper's Section IV operating point.
/// `E_instr`, `E_alu` and `E_lsu` are fixed at typical
/// 22 nm near-threshold magnitudes; `E_clk` and `E_mac` solve the two
/// calibration equations (see `EXPERIMENTS.md`). The resulting
/// `E_mac ≈ 1.2 pJ` per 16-bit MAC and `E_clk ≈ 2.7 pJ` idle floor are
/// physically plausible for an MCU-class core in this node.
///
/// # Example
///
/// ```
/// use rnnasip_energy::{Activity, PowerModel};
///
/// let model = PowerModel::gf22fdx_065v();
/// let idle = Activity { cycles: 1000, ..Default::default() };
/// let p = model.power_mw(&idle);
/// // An idle core burns only the clock floor, ~1 mW.
/// assert!(p.total > 0.5 && p.total < 1.5);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Supply voltage in V (documentation only; energies are already at
    /// this operating point).
    pub voltage_v: f64,
    /// Clock/leakage floor per cycle (pJ).
    pub e_clk_pj: f64,
    /// Fetch+decode+regfile energy per retired instruction (pJ).
    pub e_instr_pj: f64,
    /// Energy per scalar ALU/branch operation (pJ).
    pub e_alu_pj: f64,
    /// Energy per 16-bit MAC operation (pJ).
    pub e_mac_pj: f64,
    /// Energy per LSU/TCDM access (pJ).
    pub e_lsu_pj: f64,
}

impl PowerModel {
    /// The calibrated GF 22FDX, 0.65 V, 380 MHz model (see type docs).
    pub fn gf22fdx_065v() -> Self {
        Self {
            freq_hz: 380e6,
            voltage_v: 0.65,
            e_clk_pj: 2.705,
            e_instr_pj: 1.2,
            e_alu_pj: 0.5,
            e_mac_pj: 1.205,
            e_lsu_pj: 1.1,
        }
    }

    /// A derived model at another operating point, using first-order
    /// CMOS scaling: dynamic energy per event scales with `(V/V₀)²`,
    /// and the achievable frequency is supplied by the caller (FDX
    /// back-biasing makes the V–f curve process-dependent; this is a
    /// what-if tool, not a claim about the paper's silicon).
    ///
    /// # Panics
    ///
    /// Panics on non-positive voltage or frequency.
    #[must_use]
    pub fn at_operating_point(&self, voltage_v: f64, freq_hz: f64) -> Self {
        assert!(
            voltage_v > 0.0 && freq_hz > 0.0,
            "operating point must be positive"
        );
        let k = (voltage_v / self.voltage_v).powi(2);
        Self {
            freq_hz,
            voltage_v,
            e_clk_pj: self.e_clk_pj * k,
            e_instr_pj: self.e_instr_pj * k,
            e_alu_pj: self.e_alu_pj * k,
            e_mac_pj: self.e_mac_pj * k,
            e_lsu_pj: self.e_lsu_pj * k,
        }
    }

    /// Power breakdown in mW for an activity vector.
    pub fn power_mw(&self, a: &Activity) -> PowerBreakdown {
        if a.cycles == 0 {
            return PowerBreakdown::default();
        }
        let cyc = a.cycles as f64;
        // pJ/cycle × Hz = pW × 1e-9 = mW.
        let to_mw = self.freq_hz * 1e-9;
        let clock = self.e_clk_pj * to_mw;
        let frontend = self.e_instr_pj * (a.instrs as f64 / cyc) * to_mw;
        let alu = self.e_alu_pj * (a.alu_ops as f64 / cyc) * to_mw;
        let mac = self.e_mac_pj * (a.mac_ops as f64 / cyc) * to_mw;
        let lsu = self.e_lsu_pj * ((a.loads + a.stores) as f64 / cyc) * to_mw;
        PowerBreakdown {
            clock,
            frontend,
            alu,
            mac,
            lsu,
            total: clock + frontend + alu + mac + lsu,
        }
    }

    /// Throughput in MMAC/s for an activity vector at this clock.
    pub fn mmacs(&self, a: &Activity) -> f64 {
        a.macs_per_cycle() * self.freq_hz / 1e6
    }

    /// Energy efficiency in GMAC/s/W.
    pub fn gmacs_per_w(&self, a: &Activity) -> f64 {
        let p = self.power_mw(a);
        if p.total == 0.0 {
            0.0
        } else {
            self.mmacs(a) / p.total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Activity vectors measured on the full RRM suite (see the
    /// `core_results` bench binary); the calibration must reproduce the
    /// paper's two anchor powers.
    #[test]
    fn calibration_anchors() {
        let model = PowerModel::gf22fdx_065v();
        let baseline = Activity {
            cycles: 12_114_333,
            instrs: 10_755_326,
            mac_ops: 1_316_954,
            loads: 3_969_745,
            stores: 1_336_064,
            alu_ops: 4_170_000,
        };
        let extended = Activity {
            cycles: 825_766,
            instrs: 822_188,
            mac_ops: 1_316_748,
            loads: 748_734,
            stores: 16_048,
            alu_ops: 45_500,
        };
        let p_base = model.power_mw(&baseline).total;
        let p_ext = model.power_mw(&extended).total;
        assert!(
            (p_base - 1.73).abs() < 0.15,
            "baseline power {p_base} mW (target 1.73)"
        );
        assert!(
            (p_ext - 2.61).abs() < 0.15,
            "extended power {p_ext} mW (target 2.61)"
        );
        // The 10x energy-efficiency headline.
        let eff_ratio = model.gmacs_per_w(&extended) / model.gmacs_per_w(&baseline);
        assert!(
            (8.0..13.0).contains(&eff_ratio),
            "efficiency ratio {eff_ratio}"
        );
    }

    #[test]
    fn more_macs_per_cycle_is_more_efficient() {
        let model = PowerModel::gf22fdx_065v();
        let slow = Activity {
            cycles: 1000,
            instrs: 900,
            mac_ops: 100,
            loads: 300,
            stores: 100,
            alu_ops: 400,
        };
        let fast = Activity {
            cycles: 1000,
            instrs: 1000,
            mac_ops: 1600,
            loads: 900,
            stores: 20,
            alu_ops: 60,
        };
        assert!(model.gmacs_per_w(&fast) > 5.0 * model.gmacs_per_w(&slow));
    }

    #[test]
    fn dvfs_scaling_behaves() {
        let base = PowerModel::gf22fdx_065v();
        let a = Activity {
            cycles: 1000,
            instrs: 1000,
            mac_ops: 1500,
            loads: 800,
            stores: 50,
            alu_ops: 100,
        };
        // Same voltage, double frequency: throughput and power double,
        // efficiency unchanged.
        let fast = base.at_operating_point(0.65, 760e6);
        assert!((fast.mmacs(&a) - 2.0 * base.mmacs(&a)).abs() < 1e-9);
        assert!((fast.power_mw(&a).total - 2.0 * base.power_mw(&a).total).abs() < 1e-9);
        assert!((fast.gmacs_per_w(&a) - base.gmacs_per_w(&a)).abs() < 1e-9);
        // Lower voltage at the same frequency: strictly more efficient.
        let lv = base.at_operating_point(0.5, 380e6);
        assert!(lv.gmacs_per_w(&a) > base.gmacs_per_w(&a));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_operating_point_panics() {
        let _ = PowerModel::gf22fdx_065v().at_operating_point(0.0, 380e6);
    }

    #[test]
    fn zero_cycles_is_zero_power() {
        let model = PowerModel::gf22fdx_065v();
        assert_eq!(model.power_mw(&Activity::default()).total, 0.0);
        assert_eq!(model.gmacs_per_w(&Activity::default()), 0.0);
    }
}
