//! Gate-count (area) model.

use core::fmt;

/// One synthesized block of the core with its gate-equivalent budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaBlock {
    /// Block name.
    pub name: &'static str,
    /// Area in kGE (NAND2-equivalent gates × 1000).
    pub kge: f64,
    /// Whether the block belongs to the RNN extension.
    pub extension: bool,
}

/// Per-block area budget of the extended core.
///
/// The baseline matches the published RI5CY (RV32IMC+Xpulp) synthesis
/// class (~68 kGE in this configuration); the extension blocks sum to
/// the paper's **+2.3 kGE (3.4 %)**: the piecewise-linear `tanh`/`sig`
/// unit with its two 32-entry LUTs, the SPR pair with its operand
/// multiplexing for `pl.sdotsp.h`, and the decoder additions. The
/// critical path (LSU → memory in the write-back stage) is untouched by
/// all three, which is why the paper reports an unchanged 380 MHz
/// operating point.
///
/// # Example
///
/// ```
/// let area = rnnasip_energy::AreaModel::new();
/// assert!((area.overhead_fraction() - 0.034).abs() < 0.002);
/// assert!((area.extension_kge() - 2.3).abs() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct AreaModel {
    blocks: Vec<AreaBlock>,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::new()
    }
}

impl AreaModel {
    /// The calibrated block budget.
    pub fn new() -> Self {
        let blocks = vec![
            AreaBlock {
                name: "prefetch/IF",
                kge: 9.4,
                extension: false,
            },
            AreaBlock {
                name: "decoder/controller",
                kge: 12.2,
                extension: false,
            },
            AreaBlock {
                name: "ALU (incl. SIMD)",
                kge: 13.6,
                extension: false,
            },
            AreaBlock {
                name: "MULT/MAC",
                kge: 10.1,
                extension: false,
            },
            AreaBlock {
                name: "GPR file",
                kge: 13.5,
                extension: false,
            },
            AreaBlock {
                name: "LSU",
                kge: 4.7,
                extension: false,
            },
            AreaBlock {
                name: "CSR + hwloop",
                kge: 2.4,
                extension: false,
            },
            AreaBlock {
                name: "debug unit",
                kge: 1.7,
                extension: false,
            },
            AreaBlock {
                name: "tanh/sig PLA unit",
                kge: 1.45,
                extension: true,
            },
            AreaBlock {
                name: "SPR pair + operand mux",
                kge: 0.65,
                extension: true,
            },
            AreaBlock {
                name: "decoder additions",
                kge: 0.20,
                extension: true,
            },
        ];
        Self { blocks }
    }

    /// All blocks.
    pub fn blocks(&self) -> &[AreaBlock] {
        &self.blocks
    }

    /// Baseline core area in kGE.
    pub fn base_kge(&self) -> f64 {
        self.blocks
            .iter()
            .filter(|b| !b.extension)
            .map(|b| b.kge)
            .sum()
    }

    /// RNN-extension area in kGE (the paper's +2.3 kGE).
    pub fn extension_kge(&self) -> f64 {
        self.blocks
            .iter()
            .filter(|b| b.extension)
            .map(|b| b.kge)
            .sum()
    }

    /// Total extended-core area in kGE.
    pub fn total_kge(&self) -> f64 {
        self.base_kge() + self.extension_kge()
    }

    /// Extension overhead as a fraction of the baseline (the paper's
    /// 3.4 %).
    pub fn overhead_fraction(&self) -> f64 {
        self.extension_kge() / self.base_kge()
    }
}

impl fmt::Display for AreaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<26} {:>8}  ext", "block", "kGE")?;
        for b in &self.blocks {
            writeln!(
                f,
                "{:<26} {:>8.2}  {}",
                b.name,
                b.kge,
                if b.extension { "yes" } else { "" }
            )?;
        }
        writeln!(
            f,
            "base {:.1} kGE + extension {:.2} kGE = {:.1} kGE ({:.1}% overhead)",
            self.base_kge(),
            self.extension_kge(),
            self.total_kge(),
            100.0 * self.overhead_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_headline() {
        let a = AreaModel::new();
        assert!((a.extension_kge() - 2.3).abs() < 1e-9);
        assert!((a.overhead_fraction() - 0.034).abs() < 0.001);
    }

    #[test]
    fn display_lists_every_block() {
        let a = AreaModel::new();
        let text = a.to_string();
        for b in a.blocks() {
            assert!(text.contains(b.name));
        }
        assert!(text.contains("overhead"));
    }
}
