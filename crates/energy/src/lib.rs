//! Area, power and energy-efficiency models for the RNN-extended core.
//!
//! The paper implements the core in GlobalFoundries 22 nm FDX and reports
//! (Section IV): +2.3 kGE (3.4 %) area for the extensions, an unchanged
//! critical path at 380 MHz / 0.65 V, 1.73 mW running RV32IMC code
//! vs 2.61 mW running extended code, and a 10× energy-efficiency gain
//! (21→218 GMAC/s/W class numbers).
//!
//! Without the PDK those absolute numbers cannot be re-synthesized, so
//! this crate substitutes *calibrated analytical models*:
//!
//! * [`AreaModel`] — a per-block gate-count budget whose baseline matches
//!   published RI5CY numbers and whose extension blocks sum to the
//!   paper's +2.3 kGE;
//! * [`PowerModel`] — an activity-based energy model
//!   (`E_cycle = E_clk + Σ unit_energy · unit_activity`) whose per-event
//!   constants are calibrated on the RRM suite so that the *baseline*
//!   workload dissipates 1.73 mW and the *fully-extended* workload
//!   2.61 mW at 380 MHz. Everything in between (other levels, other
//!   workloads) is then *predicted*, not fitted — the 10× efficiency
//!   ratio emerges from simulated activity counts.
//!
//! Activities are extracted from the simulator's per-mnemonic
//! [`Stats`], so any program run on [`rnnasip_sim`] can be scored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod area;
mod power;

pub use activity::Activity;
pub use area::{AreaBlock, AreaModel};
pub use power::{PowerBreakdown, PowerModel};

use rnnasip_sim::Stats;

/// Convenience: full efficiency report for a finished run.
///
/// # Example
///
/// ```
/// use rnnasip_energy::{report, PowerModel};
/// use rnnasip_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.record_name("pl.sdotsp", 1, 2);
/// stats.record_name("p.lw!", 1, 0);
/// let r = report(&stats, &PowerModel::gf22fdx_065v());
/// assert!(r.mmacs > 0.0);
/// assert!(r.gmacs_per_w > 0.0);
/// ```
pub fn report(stats: &Stats, model: &PowerModel) -> EfficiencyReport {
    let activity = Activity::from_stats(stats);
    let power = model.power_mw(&activity);
    let mmacs = model.mmacs(&activity);
    EfficiencyReport {
        gmacs_per_w: if power.total > 0.0 {
            mmacs / power.total
        } else {
            0.0
        },
        mmacs,
        power,
        activity,
    }
}

/// Throughput/power/efficiency summary of one run.
#[derive(Clone, Debug)]
pub struct EfficiencyReport {
    /// Throughput in MMAC/s at the model's clock.
    pub mmacs: f64,
    /// Power breakdown in mW.
    pub power: PowerBreakdown,
    /// Energy efficiency in GMAC/s/W.
    pub gmacs_per_w: f64,
    /// The extracted activity vector.
    pub activity: Activity,
}
