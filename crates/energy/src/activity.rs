//! Activity extraction from simulator statistics.

use rnnasip_sim::Stats;

/// Per-run activity counts, the inputs of the power model.
///
/// Extracted from per-mnemonic [`Stats`]: memory mnemonics count as LSU
/// accesses (`pl.sdotsp` counts both a MAC-unit use *and* an LSU access,
/// its whole point), MAC operations come from the simulator's
/// 16-bit-MAC accounting, and the remaining retired instructions are
/// classed as control/ALU work.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Activity {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instrs: u64,
    /// 16-bit multiply-accumulate operations.
    pub mac_ops: u64,
    /// Data-memory loads (including the implicit `pl.sdotsp` stream
    /// loads).
    pub loads: u64,
    /// Data-memory stores.
    pub stores: u64,
    /// ALU/branch/control instructions (everything that is neither a
    /// memory access nor a pure MAC-unit instruction).
    pub alu_ops: u64,
}

impl Activity {
    /// Extracts activities from per-mnemonic statistics.
    pub fn from_stats(stats: &Stats) -> Self {
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut mac_instrs = 0u64;
        for (name, row) in stats.iter() {
            if is_load_mnemonic(name) {
                loads += row.instrs;
            } else if is_store_mnemonic(name) {
                stores += row.instrs;
            }
            if is_mac_mnemonic(name) {
                mac_instrs += row.instrs;
            }
        }
        let accounted = loads + stores + mac_instrs;
        // pl.sdotsp is both a load and a MAC instruction; avoid double
        // subtraction when computing the ALU remainder.
        let sdotsp = stats.row("pl.sdotsp").instrs + stats.row("pl.sdotsp.b").instrs;
        let alu_ops = stats.instrs().saturating_sub(accounted - sdotsp);
        Self {
            cycles: stats.cycles(),
            instrs: stats.instrs(),
            mac_ops: stats.mac_ops(),
            loads,
            stores,
            alu_ops,
        }
    }

    /// LSU accesses per cycle.
    pub fn lsu_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.cycles as f64
    }

    /// MAC operations per cycle (2.0 would be the `pl.sdotsp.h` peak).
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.mac_ops as f64 / self.cycles as f64
    }
}

fn is_load_mnemonic(name: &str) -> bool {
    matches!(
        name,
        "lb" | "lh" | "lw" | "lbu" | "lhu" | "p.lb" | "p.lh" | "p.lw" | "p.lbu" | "p.lhu"
    ) || name.starts_with("p.l") && name.ends_with('!')
        || name.starts_with("pl.sdotsp")
}

fn is_store_mnemonic(name: &str) -> bool {
    matches!(name, "sb" | "sh" | "sw") || name.starts_with("p.s") && name.ends_with('!')
}

fn is_mac_mnemonic(name: &str) -> bool {
    name == "p.mac"
        || name == "p.msu"
        || name == "mul"
        || name.starts_with("pv.dot")
        || name.starts_with("pv.sdot")
        || name.starts_with("pl.sdotsp")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let mut s = Stats::new();
        s.record_name("p.lw!", 2, 0); // one stall cycle inside
        s.record_name("pl.sdotsp", 1, 2);
        s.record_name("p.sh!", 1, 0);
        s.record_name("addi", 1, 0);
        s.record_name("p.mac", 1, 1);
        let a = Activity::from_stats(&s);
        assert_eq!(a.loads, 2); // p.lw! + pl.sdotsp stream load
        assert_eq!(a.stores, 1);
        assert_eq!(a.mac_ops, 3);
        assert_eq!(a.alu_ops, 1); // only the addi; pl.sdotsp is MAC+LSU work
        assert_eq!(a.cycles, 6);
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let a = Activity::from_stats(&Stats::new());
        assert_eq!(a, Activity::default());
        assert_eq!(a.macs_per_cycle(), 0.0);
        assert_eq!(a.lsu_per_cycle(), 0.0);
    }
}
