//! Assembler for the RNN-extended RISC-V core.
//!
//! Two front ends produce the same [`Program`](rnnasip_sim::Program):
//!
//! * [`Asm`] — a typed **builder API** with labels. This is what the
//!   kernel generators in `rnnasip-core` use: emission is a method call
//!   per instruction, labels are bound and referenced symbolically, and a
//!   final two-pass resolve turns them into PC-relative offsets (and
//!   hardware-loop end offsets).
//! * [`assemble_text`] — a **text assembler** accepting the same syntax
//!   the disassembler prints (plus labels, comments and common pseudo
//!   instructions), so `assemble_text(prog.to_string())` round-trips.
//!
//! # Example
//!
//! ```
//! use rnnasip_asm::Asm;
//! use rnnasip_isa::Reg;
//!
//! // Sum the integers 1..=10 with a hardware loop.
//! let mut a = Asm::new(0);
//! a.li(Reg::A0, 10); // loop count
//! a.li(Reg::A1, 0); // accumulator
//! let end = a.new_label();
//! a.lp_setup(rnnasip_isa::LoopIdx::L0, Reg::A0, end);
//! a.add(Reg::A1, Reg::A1, Reg::A0);
//! a.addi(Reg::A0, Reg::A0, -1);
//! a.bind(end);
//! a.ecall();
//! let prog = a.assemble()?;
//! assert!(prog.len() >= 6);
//! # Ok::<(), rnnasip_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod parse;

pub use builder::{Asm, Label};
pub use error::AsmError;
pub use parse::assemble_text;
