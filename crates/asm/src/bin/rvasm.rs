//! `rvasm` — assembler / disassembler / runner CLI for the RNN-extended
//! RISC-V core.
//!
//! ```text
//! rvasm asm    prog.s  [-o prog.bin] [--base 0x0]
//! rvasm disasm prog.bin              [--base 0x0]
//! rvasm run    prog.s               [--base 0x0] [--max-cycles N] [--trace]
//! ```
//!
//! `run` assembles (or decodes, for `.bin` input), executes on the
//! simulator with a 64 MiB TCDM, and prints the exit reason, the
//! register file, and the per-mnemonic cycle statistics.

use rnnasip_asm::assemble_text;
use rnnasip_isa::Reg;
use rnnasip_sim::{Machine, Program};
use std::process::ExitCode;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rvasm: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    command: String,
    input: String,
    output: Option<String>,
    base: u32,
    max_cycles: u64,
    trace: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut input = None;
    let mut output = None;
    let mut base = 0u32;
    let mut max_cycles = 100_000_000u64;
    let mut trace = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--output" => {
                output = Some(args.next().ok_or("missing value for -o")?);
            }
            "--base" => {
                let v = args.next().ok_or("missing value for --base")?;
                base = parse_u32(&v)?;
            }
            "--max-cycles" => {
                let v = args.next().ok_or("missing value for --max-cycles")?;
                max_cycles = v.parse().map_err(|_| format!("bad cycle count `{v}`"))?;
            }
            "--trace" => trace = true,
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(Options {
        command,
        input: input.ok_or_else(usage)?,
        output,
        base,
        max_cycles,
        trace,
    })
}

fn usage() -> String {
    "usage: rvasm <asm|disasm|run> <file> [-o out] [--base ADDR] [--max-cycles N] [--trace]"
        .to_owned()
}

fn parse_u32(s: &str) -> Result<u32, String> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("bad address `{s}`"))
}

fn load_program(opts: &Options) -> Result<Program, String> {
    if opts.input.ends_with(".bin") {
        let bytes =
            std::fs::read(&opts.input).map_err(|e| format!("cannot read {}: {e}", opts.input))?;
        Program::from_bytes(opts.base, &bytes).map_err(|e| format!("decode failed: {e}"))
    } else {
        let source = std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
        assemble_text(opts.base, &source).map_err(|e| format!("assembly failed: {e}"))
    }
}

fn real_main() -> Result<(), String> {
    let opts = parse_args()?;
    match opts.command.as_str() {
        "asm" => {
            let prog = load_program(&opts)?;
            let bytes = prog.to_bytes();
            match &opts.output {
                Some(path) => {
                    std::fs::write(path, &bytes)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!(
                        "{}: {} instructions, {} bytes -> {path}",
                        opts.input,
                        prog.len(),
                        bytes.len()
                    );
                }
                None => {
                    for item in prog.iter() {
                        let word = rnnasip_isa::encode(&item.instr);
                        println!("{:#010x}: {word:08x}  {}", item.addr, item.instr);
                    }
                }
            }
            Ok(())
        }
        "disasm" => {
            let prog = load_program(&opts)?;
            for item in prog.iter() {
                println!("{:#010x}: {}", item.addr, item.instr);
            }
            Ok(())
        }
        "run" => {
            let prog = load_program(&opts)?;
            let mut m = Machine::new(64 << 20);
            m.load_program(&prog);
            let exit = if opts.trace {
                m.run_with_trace(opts.max_cycles, |e| {
                    println!("{:>10} {:#010x}  {}", e.cycle, e.pc, e.instr);
                })
            } else {
                m.run(opts.max_cycles)
            }
            .map_err(|e| format!("execution failed: {e}"))?;
            println!("exit: {exit}");
            println!(
                "cycles: {}  instructions: {}  MACs: {}",
                m.stats().cycles(),
                m.stats().instrs(),
                m.stats().mac_ops()
            );
            println!("\nregisters:");
            for r in Reg::all() {
                let v = m.core().reg(r);
                if v != 0 {
                    println!("  {:<5} = {v:#010x} ({})", r.abi_name(), v as i32);
                }
            }
            println!("\nstatistics:");
            print!("{}", m.stats());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
