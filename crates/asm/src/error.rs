//! Assembler errors.

use core::fmt;

/// Errors produced while building or parsing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to an address.
    UnboundLabel {
        /// Internal label index (builder) or name (text assembler).
        name: String,
    },
    /// A label was bound twice.
    DuplicateLabel {
        /// Label name.
        name: String,
    },
    /// A PC-relative offset does not fit its encoding field.
    OffsetOutOfRange {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
        /// The computed byte offset.
        offset: i64,
    },
    /// A hardware-loop end label is before (or at) the setup instruction.
    LoopEndBeforeSetup {
        /// Byte address of the setup instruction.
        setup_addr: u32,
        /// Byte address of the bound end label.
        end_addr: u32,
    },
    /// Text parse error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "unbound label `{name}`"),
            AsmError::DuplicateLabel { name } => write!(f, "duplicate label `{name}`"),
            AsmError::OffsetOutOfRange { mnemonic, offset } => {
                write!(f, "offset {offset} out of range for `{mnemonic}`")
            }
            AsmError::LoopEndBeforeSetup {
                setup_addr,
                end_addr,
            } => write!(
                f,
                "hardware-loop end {end_addr:#x} not after setup {setup_addr:#x}"
            ),
            AsmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for AsmError {}
