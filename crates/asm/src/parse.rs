//! The text-assembler front end.
//!
//! Accepts the syntax the disassembler prints, plus:
//!
//! * labels (`name:` on their own or before an instruction),
//! * comments (`#`, `//` or `;` to end of line),
//! * pseudo instructions: `nop`, `mv`, `li`, `j`, `ret`, `beqz`, `bnez`,
//!   `csrr`,
//! * label operands wherever the disassembler prints a numeric
//!   PC-relative offset (branches, `jal`, `lp.setup*`).

use crate::builder::{Asm, Label};
use crate::error::AsmError;
use rnnasip_isa::{
    AluImmOp, AluOp, BranchOp, Csr, CsrOp, DotOp, Instr, LoadOp, LoopIdx, MulDivOp, PvAluOp, Reg,
    SimdMode, SimdSize, StoreOp,
};
use rnnasip_sim::Program;
use std::collections::HashMap;

/// Assembles source text into a program placed at `base`.
///
/// # Errors
///
/// [`AsmError::Parse`] with the offending line for syntax errors;
/// label/offset errors as in [`Asm::assemble`].
///
/// # Example
///
/// ```
/// use rnnasip_asm::assemble_text;
///
/// let prog = assemble_text(0, r"
///     li   a0, 5
///     li   a1, 0
/// top:
///     add  a1, a1, a0
///     addi a0, a0, -1
///     bnez a0, top
///     ecall
/// ")?;
/// assert!(prog.len() > 4);
/// # Ok::<(), rnnasip_asm::AsmError>(())
/// ```
pub fn assemble_text(base: u32, source: &str) -> Result<Program, AsmError> {
    let mut asm = Asm::new(base);
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut bound: Vec<String> = Vec::new();

    let mut get_label = |asm: &mut Asm, name: &str| -> Label {
        if let Some(&l) = labels.get(name) {
            l
        } else {
            let l = asm.new_label();
            labels.insert(name.to_owned(), l);
            l
        }
    };

    for (lineno, raw_line) in source.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Leading labels (possibly several).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !is_ident(name) {
                break;
            }
            let label = get_label(&mut asm, name);
            if bound.contains(&name.to_owned()) {
                return Err(AsmError::DuplicateLabel {
                    name: name.to_owned(),
                });
            }
            asm.bind(label);
            bound.push(name.to_owned());
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        parse_instr(&mut asm, rest, lineno + 1, &mut |a, n| get_label(a, n))?;
    }
    asm.assemble()
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in ["#", "//", ";"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().expect("nonempty").is_ascii_digit()
}

fn perr(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError::Parse {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    tok.parse::<Reg>().map_err(|e| perr(line, format!("{e}")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| perr(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// `offset(base)` / `offset(base!)` / `reg(base)` memory operand.
struct MemOperand {
    base: Reg,
    /// `Ok(imm)` or `Err(index register)`.
    offset: Result<i32, Reg>,
    post_increment: bool,
}

fn parse_mem(tok: &str, line: usize) -> Result<MemOperand, AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| perr(line, format!("expected memory operand, got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| perr(line, format!("missing `)` in `{tok}`")))?;
    let off_str = tok[..open].trim();
    let mut base_str = tok[open + 1..close].trim();
    let post_increment = if let Some(b) = base_str.strip_suffix('!') {
        base_str = b.trim();
        true
    } else {
        false
    };
    let base = parse_reg(base_str, line)?;
    let offset = if off_str.is_empty() {
        Ok(0)
    } else if let Ok(imm) = parse_imm(off_str, line) {
        Ok(imm as i32)
    } else {
        Err(parse_reg(off_str, line)?)
    };
    Ok(MemOperand {
        base,
        offset,
        post_increment,
    })
}

fn parse_loop_idx(tok: &str, line: usize) -> Result<LoopIdx, AsmError> {
    match tok.trim() {
        "0" => Ok(LoopIdx::L0),
        "1" => Ok(LoopIdx::L1),
        other => Err(perr(line, format!("bad loop index `{other}`"))),
    }
}

fn parse_csr(tok: &str, line: usize) -> Result<Csr, AsmError> {
    let names = [
        ("mcycle", Csr::Mcycle),
        ("mcycleh", Csr::Mcycleh),
        ("minstret", Csr::Minstret),
        ("minstreth", Csr::Minstreth),
        ("lpstart0", Csr::LpStart0),
        ("lpend0", Csr::LpEnd0),
        ("lpcount0", Csr::LpCount0),
        ("lpstart1", Csr::LpStart1),
        ("lpend1", Csr::LpEnd1),
        ("lpcount1", Csr::LpCount1),
    ];
    for (name, csr) in names {
        if tok == name {
            return Ok(csr);
        }
    }
    let addr = parse_imm(tok, line)?;
    Ok(Csr::from_addr(addr as u16))
}

type GetLabel<'a> = dyn FnMut(&mut Asm, &str) -> Label + 'a;

/// Branch/jump target: numeric offset (emitted fixed) or label.
enum Target {
    Offset(i32),
    Label(Label),
}

fn parse_target(
    asm: &mut Asm,
    tok: &str,
    line: usize,
    get_label: &mut GetLabel,
) -> Result<Target, AsmError> {
    if let Ok(imm) = parse_imm(tok, line) {
        Ok(Target::Offset(imm as i32))
    } else if is_ident(tok) {
        Ok(Target::Label(get_label(asm, tok)))
    } else {
        Err(perr(line, format!("bad branch target `{tok}`")))
    }
}

fn parse_instr(
    asm: &mut Asm,
    text: &str,
    line: usize,
    get_label: &mut GetLabel,
) -> Result<(), AsmError> {
    let (mnemonic, ops_str) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if ops_str.is_empty() {
        Vec::new()
    } else {
        ops_str.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(perr(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    // Branch helper shared by all conditional branches.
    let mut do_branch = |asm: &mut Asm,
                         op: BranchOp,
                         rs1: Reg,
                         rs2: Reg,
                         target_tok: &str|
     -> Result<(), AsmError> {
        match parse_target(asm, target_tok, line, get_label)? {
            Target::Offset(offset) => {
                asm.emit(Instr::Branch {
                    op,
                    rs1,
                    rs2,
                    offset,
                });
                Ok(())
            }
            Target::Label(l) => {
                asm.branch(op, rs1, rs2, l);
                Ok(())
            }
        }
    };

    match mnemonic {
        // ---------------- pseudo ----------------
        "nop" => {
            want(0)?;
            asm.nop();
        }
        "ecall" => {
            want(0)?;
            asm.ecall();
        }
        "ebreak" => {
            want(0)?;
            asm.emit(Instr::Ebreak);
        }
        "fence" => {
            want(0)?;
            asm.emit(Instr::Fence);
        }
        "ret" => {
            want(0)?;
            asm.ret();
        }
        "mv" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            asm.mv(rd, rs);
        }
        "li" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let imm = parse_imm(ops[1], line)?;
            asm.li(rd, imm as i32);
        }
        "j" => {
            want(1)?;
            match parse_target(asm, ops[0], line, get_label)? {
                Target::Offset(offset) => asm.emit(Instr::Jal {
                    rd: Reg::ZERO,
                    offset,
                }),
                Target::Label(l) => asm.j(l),
            }
        }
        "beqz" | "bnez" => {
            want(2)?;
            let rs1 = parse_reg(ops[0], line)?;
            let op = if mnemonic == "beqz" {
                BranchOp::Beq
            } else {
                BranchOp::Bne
            };
            do_branch(asm, op, rs1, Reg::ZERO, ops[1])?;
        }
        "csrr" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let csr = parse_csr(ops[1], line)?;
            asm.csrr(rd, csr);
        }

        // ---------------- RV32I ----------------
        "lui" | "auipc" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let imm20 = (parse_imm(ops[1], line)? & 0xFFFFF) as i32;
            asm.emit(if mnemonic == "lui" {
                Instr::Lui { rd, imm20 }
            } else {
                Instr::Auipc { rd, imm20 }
            });
        }
        "jal" => {
            let (rd, target_tok) = match ops.len() {
                1 => (Reg::RA, ops[0]),
                2 => (parse_reg(ops[0], line)?, ops[1]),
                n => return Err(perr(line, format!("`jal` expects 1-2 operands, got {n}"))),
            };
            match parse_target(asm, target_tok, line, get_label)? {
                Target::Offset(offset) => asm.emit(Instr::Jal { rd, offset }),
                Target::Label(l) => asm.jal(rd, l),
            }
        }
        "jalr" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let mem = parse_mem(ops[1], line)?;
            let offset = mem
                .offset
                .map_err(|_| perr(line, "jalr needs an immediate offset"))?;
            asm.jalr(rd, offset, mem.base);
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            want(3)?;
            let op = match mnemonic {
                "beq" => BranchOp::Beq,
                "bne" => BranchOp::Bne,
                "blt" => BranchOp::Blt,
                "bge" => BranchOp::Bge,
                "bltu" => BranchOp::Bltu,
                _ => BranchOp::Bgeu,
            };
            let rs1 = parse_reg(ops[0], line)?;
            let rs2 = parse_reg(ops[1], line)?;
            do_branch(asm, op, rs1, rs2, ops[2])?;
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            want(2)?;
            let op = load_op(mnemonic);
            let rd = parse_reg(ops[0], line)?;
            let mem = parse_mem(ops[1], line)?;
            if mem.post_increment {
                return Err(perr(line, "post-increment requires the p.-prefixed form"));
            }
            let offset = mem
                .offset
                .map_err(|_| perr(line, "register offsets require the p.-prefixed form"))?;
            asm.emit(Instr::Load {
                op,
                rd,
                rs1: mem.base,
                offset,
            });
        }
        "sb" | "sh" | "sw" => {
            want(2)?;
            let op = store_op(mnemonic);
            let rs2 = parse_reg(ops[0], line)?;
            let mem = parse_mem(ops[1], line)?;
            if mem.post_increment {
                return Err(perr(line, "post-increment requires the p.-prefixed form"));
            }
            let offset = mem
                .offset
                .map_err(|_| perr(line, "register-offset stores are not supported"))?;
            asm.emit(Instr::Store {
                op,
                rs2,
                rs1: mem.base,
                offset,
            });
        }
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            want(3)?;
            let op = match mnemonic {
                "addi" => AluImmOp::Addi,
                "slti" => AluImmOp::Slti,
                "sltiu" => AluImmOp::Sltiu,
                "xori" => AluImmOp::Xori,
                "ori" => AluImmOp::Ori,
                "andi" => AluImmOp::Andi,
                "slli" => AluImmOp::Slli,
                "srli" => AluImmOp::Srli,
                _ => AluImmOp::Srai,
            };
            let rd = parse_reg(ops[0], line)?;
            let rs1 = parse_reg(ops[1], line)?;
            let imm = parse_imm(ops[2], line)? as i32;
            asm.emit(Instr::OpImm { op, rd, rs1, imm });
        }
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
            want(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                _ => AluOp::And,
            };
            let (rd, rs1, rs2) = three_regs(&ops, line)?;
            asm.emit(Instr::Op { op, rd, rs1, rs2 });
        }
        "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            want(3)?;
            let op = match mnemonic {
                "mul" => MulDivOp::Mul,
                "mulh" => MulDivOp::Mulh,
                "mulhsu" => MulDivOp::Mulhsu,
                "mulhu" => MulDivOp::Mulhu,
                "div" => MulDivOp::Div,
                "divu" => MulDivOp::Divu,
                "rem" => MulDivOp::Rem,
                _ => MulDivOp::Remu,
            };
            let (rd, rs1, rs2) = three_regs(&ops, line)?;
            asm.emit(Instr::MulDiv { op, rd, rs1, rs2 });
        }
        "csrrw" | "csrrs" | "csrrc" => {
            want(3)?;
            let op = match mnemonic {
                "csrrw" => CsrOp::Csrrw,
                "csrrs" => CsrOp::Csrrs,
                _ => CsrOp::Csrrc,
            };
            let rd = parse_reg(ops[0], line)?;
            let csr = parse_csr(ops[1], line)?;
            let rs1 = parse_reg(ops[2], line)?;
            asm.emit(Instr::Csr { op, rd, rs1, csr });
        }

        // ---------------- Xpulp memory ----------------
        "p.lb" | "p.lh" | "p.lw" | "p.lbu" | "p.lhu" => {
            want(2)?;
            let op = load_op(&mnemonic[2..]);
            let rd = parse_reg(ops[0], line)?;
            let mem = parse_mem(ops[1], line)?;
            match (mem.post_increment, mem.offset) {
                (true, Ok(offset)) => asm.emit(Instr::LoadPostInc {
                    op,
                    rd,
                    rs1: mem.base,
                    offset,
                }),
                (false, Err(rs2)) => asm.emit(Instr::LoadReg {
                    op,
                    rd,
                    rs1: mem.base,
                    rs2,
                }),
                _ => {
                    return Err(perr(
                        line,
                        "p.-loads take `imm(base!)` or `reg(base)` operands",
                    ))
                }
            }
        }
        "p.sb" | "p.sh" | "p.sw" => {
            want(2)?;
            let op = store_op(&mnemonic[2..]);
            let rs2 = parse_reg(ops[0], line)?;
            let mem = parse_mem(ops[1], line)?;
            let offset = mem
                .offset
                .map_err(|_| perr(line, "p.-stores take `imm(base!)` operands"))?;
            if !mem.post_increment {
                return Err(perr(line, "p.-stores take `imm(base!)` operands"));
            }
            asm.emit(Instr::StorePostInc {
                op,
                rs2,
                rs1: mem.base,
                offset,
            });
        }

        // ---------------- hardware loops ----------------
        "lp.starti" | "lp.endi" => {
            want(2)?;
            let l = parse_loop_idx(ops[0], line)?;
            match parse_target(asm, ops[1], line, get_label)? {
                Target::Offset(uimm) => asm.emit(if mnemonic == "lp.starti" {
                    Instr::LpStarti {
                        l,
                        uimm: uimm as u32,
                    }
                } else {
                    Instr::LpEndi {
                        l,
                        uimm: uimm as u32,
                    }
                }),
                Target::Label(label) => {
                    if mnemonic == "lp.starti" {
                        asm.lp_starti(l, label);
                    } else {
                        asm.lp_endi(l, label);
                    }
                }
            }
        }
        "lp.count" => {
            want(2)?;
            let l = parse_loop_idx(ops[0], line)?;
            let rs1 = parse_reg(ops[1], line)?;
            asm.lp_count(l, rs1);
        }
        "lp.counti" => {
            want(2)?;
            let l = parse_loop_idx(ops[0], line)?;
            let count = parse_imm(ops[1], line)? as u32;
            asm.lp_counti(l, count);
        }
        "lp.setup" => {
            want(3)?;
            let l = parse_loop_idx(ops[0], line)?;
            let rs1 = parse_reg(ops[1], line)?;
            match parse_target(asm, ops[2], line, get_label)? {
                Target::Offset(uimm) => asm.emit(Instr::LpSetup {
                    l,
                    rs1,
                    uimm: uimm as u32,
                }),
                Target::Label(label) => asm.lp_setup(l, rs1, label),
            }
        }
        "lp.setupi" => {
            want(3)?;
            let l = parse_loop_idx(ops[0], line)?;
            let count = parse_imm(ops[1], line)? as u32;
            match parse_target(asm, ops[2], line, get_label)? {
                Target::Offset(uimm) => asm.emit(Instr::LpSetupi {
                    l,
                    count,
                    uimm: uimm as u32,
                }),
                Target::Label(label) => asm.lp_setupi(l, count, label),
            }
        }

        // ---------------- Xpulp scalar DSP ----------------
        "p.mac" | "p.msu" => {
            want(3)?;
            let (rd, rs1, rs2) = three_regs(&ops, line)?;
            asm.emit(if mnemonic == "p.mac" {
                Instr::Mac { rd, rs1, rs2 }
            } else {
                Instr::Msu { rd, rs1, rs2 }
            });
        }
        "p.clip" | "p.clipu" => {
            want(3)?;
            let rd = parse_reg(ops[0], line)?;
            let rs1 = parse_reg(ops[1], line)?;
            let bits = parse_imm(ops[2], line)? as u8;
            asm.emit(if mnemonic == "p.clip" {
                Instr::Clip { rd, rs1, bits }
            } else {
                Instr::ClipU { rd, rs1, bits }
            });
        }
        "p.exths" | "p.exthz" | "p.extbs" | "p.extbz" | "p.abs" | "p.ff1" | "p.fl1" | "p.cnt"
        | "p.clb" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let rs1 = parse_reg(ops[1], line)?;
            asm.emit(match mnemonic {
                "p.exths" => Instr::ExtHs { rd, rs1 },
                "p.exthz" => Instr::ExtHz { rd, rs1 },
                "p.extbs" => Instr::ExtBs { rd, rs1 },
                "p.extbz" => Instr::ExtBz { rd, rs1 },
                "p.ff1" => Instr::Ff1 { rd, rs1 },
                "p.fl1" => Instr::Fl1 { rd, rs1 },
                "p.cnt" => Instr::Cnt { rd, rs1 },
                "p.clb" => Instr::Clb { rd, rs1 },
                _ => Instr::PAbs { rd, rs1 },
            });
        }
        "p.min" | "p.max" | "p.ror" => {
            want(3)?;
            let (rd, rs1, rs2) = three_regs(&ops, line)?;
            asm.emit(match mnemonic {
                "p.min" => Instr::PMin { rd, rs1, rs2 },
                "p.max" => Instr::PMax { rd, rs1, rs2 },
                _ => Instr::Ror { rd, rs1, rs2 },
            });
        }

        // ---------------- RNN extension ----------------
        "pl.sdotsp.h.0" | "pl.sdotsp.h.1" | "pl.sdotsp.b.0" | "pl.sdotsp.b.1" => {
            want(3)?;
            let spr = if mnemonic.ends_with('0') { 0 } else { 1 };
            let (rd, rs1, rs2) = three_regs(&ops, line)?;
            if mnemonic.contains(".h.") {
                asm.pl_sdotsp(spr, rd, rs1, rs2);
            } else {
                asm.pl_sdotsp_b(spr, rd, rs1, rs2);
            }
        }
        "pl.tanh" | "pl.sig" => {
            want(2)?;
            let rd = parse_reg(ops[0], line)?;
            let rs1 = parse_reg(ops[1], line)?;
            if mnemonic == "pl.tanh" {
                asm.pl_tanh(rd, rs1);
            } else {
                asm.pl_sig(rd, rs1);
            }
        }

        // ---------------- packed SIMD ----------------
        m if m.starts_with("pv.") => {
            parse_pv(asm, m, &ops, line)?;
        }

        other => {
            return Err(perr(line, format!("unknown mnemonic `{other}`")));
        }
    }
    Ok(())
}

fn three_regs(ops: &[&str], line: usize) -> Result<(Reg, Reg, Reg), AsmError> {
    Ok((
        parse_reg(ops[0], line)?,
        parse_reg(ops[1], line)?,
        parse_reg(ops[2], line)?,
    ))
}

fn load_op(m: &str) -> LoadOp {
    match m {
        "lb" => LoadOp::Lb,
        "lh" => LoadOp::Lh,
        "lw" => LoadOp::Lw,
        "lbu" => LoadOp::Lbu,
        _ => LoadOp::Lhu,
    }
}

fn store_op(m: &str) -> StoreOp {
    match m {
        "sb" => StoreOp::Sb,
        "sh" => StoreOp::Sh,
        _ => StoreOp::Sw,
    }
}

/// Parses `pv.<op>[.sc|.sci].<h|b>` forms.
fn parse_pv(asm: &mut Asm, mnemonic: &str, ops: &[&str], line: usize) -> Result<(), AsmError> {
    let parts: Vec<&str> = mnemonic.split('.').collect();
    // parts[0] = "pv", parts[1] = op, then optional mode, then size.
    if parts.len() < 3 {
        return Err(perr(line, format!("malformed SIMD mnemonic `{mnemonic}`")));
    }
    let size = match *parts.last().expect("nonempty") {
        "h" => SimdSize::Half,
        "b" => SimdSize::Byte,
        other => return Err(perr(line, format!("bad SIMD size `{other}`"))),
    };
    let mode_str = if parts.len() == 4 { parts[2] } else { "" };
    let op_str = parts[1];

    let dot = match op_str {
        "dotup" => Some(DotOp::DotUp),
        "dotusp" => Some(DotOp::DotUsp),
        "dotsp" => Some(DotOp::DotSp),
        "sdotup" => Some(DotOp::SdotUp),
        "sdotusp" => Some(DotOp::SdotUsp),
        "sdotsp" => Some(DotOp::SdotSp),
        _ => None,
    };
    if let Some(op) = dot {
        if !mode_str.is_empty() {
            return Err(perr(line, "dot products support only vector mode"));
        }
        if ops.len() != 3 {
            return Err(perr(line, "dot products expect 3 operands"));
        }
        let (rd, rs1, rs2) = three_regs(ops, line)?;
        asm.emit(Instr::PvDot {
            op,
            size,
            rd,
            rs1,
            rs2,
        });
        return Ok(());
    }

    let op = match op_str {
        "add" => PvAluOp::Add,
        "sub" => PvAluOp::Sub,
        "avg" => PvAluOp::Avg,
        "min" => PvAluOp::Min,
        "max" => PvAluOp::Max,
        "srl" => PvAluOp::Srl,
        "sra" => PvAluOp::Sra,
        "sll" => PvAluOp::Sll,
        "or" => PvAluOp::Or,
        "xor" => PvAluOp::Xor,
        "and" => PvAluOp::And,
        "abs" => PvAluOp::Abs,
        other => return Err(perr(line, format!("unknown SIMD op `{other}`"))),
    };
    if matches!(op, PvAluOp::Abs) {
        if ops.len() != 2 {
            return Err(perr(line, "pv.abs expects 2 operands"));
        }
        let rd = parse_reg(ops[0], line)?;
        let rs1 = parse_reg(ops[1], line)?;
        asm.emit(Instr::PvAlu {
            op,
            size,
            mode: SimdMode::Vv,
            rd,
            rs1,
            rs2: Reg::ZERO,
        });
        return Ok(());
    }
    if ops.len() != 3 {
        return Err(perr(line, "SIMD ALU ops expect 3 operands"));
    }
    let rd = parse_reg(ops[0], line)?;
    let rs1 = parse_reg(ops[1], line)?;
    match mode_str {
        "" => {
            let rs2 = parse_reg(ops[2], line)?;
            asm.emit(Instr::PvAlu {
                op,
                size,
                mode: SimdMode::Vv,
                rd,
                rs1,
                rs2,
            });
        }
        "sc" => {
            let rs2 = parse_reg(ops[2], line)?;
            asm.emit(Instr::PvAlu {
                op,
                size,
                mode: SimdMode::Sc,
                rd,
                rs1,
                rs2,
            });
        }
        "sci" => {
            let imm = parse_imm(ops[2], line)? as i8;
            asm.emit(Instr::PvAlu {
                op,
                size,
                mode: SimdMode::Sci(imm),
                rd,
                rs1,
                rs2: Reg::ZERO,
            });
        }
        other => return Err(perr(line, format!("bad SIMD mode `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_sim::Machine;

    #[test]
    fn loop_program_runs() {
        let prog = assemble_text(
            0,
            r"
            # sum 1..=5
                li   a0, 5
                li   a1, 0
            top:
                add  a1, a1, a0
                addi a0, a0, -1
                bnez a0, top
                ecall
            ",
        )
        .unwrap();
        let mut m = Machine::new(256);
        m.load_program(&prog);
        m.run(1000).unwrap();
        assert_eq!(m.core().reg(Reg::A1), 15);
    }

    #[test]
    fn table2_style_listing_parses() {
        // The paper's Table II right-hand column, lightly adapted.
        let prog = assemble_text(
            0x100,
            r"
                li  a0, 0x200        // weight stream
                li  a1, 0x300        // input stream
                pl.sdotsp.h.0 zero, a0, zero
                pl.sdotsp.h.1 zero, a0, zero
                lp.setupi 0, 5, loop_end
                p.lw t3, 4(a1!)
                pl.sdotsp.h.0 t0, a0, t3
                pl.sdotsp.h.1 t1, a0, t3
                pl.sdotsp.h.0 t2, a0, t3
                pl.sdotsp.h.1 t4, a0, t3
            loop_end:
                ecall
            ",
        )
        .unwrap();
        assert_eq!(prog.entry(), 0x100);
        // 11 instructions: li is 1 each here (small constants).
        assert_eq!(prog.len(), 11);
    }

    #[test]
    fn disasm_round_trip() {
        // Assemble, print, re-assemble: identical instruction streams.
        let src = r"
            addi a0, zero, 100
            p.lw a4, 4(a5!)
            p.lw a3, a2(a1)
            p.sh t0, 2(t1!)
            pv.sdotsp.h t0, a0, a1
            pv.add.sci.h a0, a1, -5
            pv.abs.b s0, s1
            p.clip a0, a0, 16
            pl.tanh a0, a0
            pl.sig a1, a1
            lp.counti 0, 12
            csrrs t0, mcycle, zero
            ecall
        ";
        let p1 = assemble_text(0, src).unwrap();
        let printed: String = p1.iter().map(|item| format!("{}\n", item.instr)).collect();
        let p2 = assemble_text(0, &printed).unwrap();
        let v1: Vec<_> = p1.iter().map(|i| i.instr).collect();
        let v2: Vec<_> = p2.iter().map(|i| i.instr).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble_text(0, "nop\nbogus a0, a1\n").unwrap_err();
        match err {
            AsmError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = assemble_text(0, "x:\nnop\nx:\nnop\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { .. }));
    }
}
