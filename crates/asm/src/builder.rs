//! The typed program-builder front end.

use crate::error::AsmError;
use rnnasip_isa::{
    AluImmOp, AluOp, BranchOp, Csr, CsrOp, DotOp, Instr, LoadOp, LoopIdx, MulDivOp, PvAluOp, Reg,
    SimdMode, SimdSize, StoreOp,
};
use rnnasip_sim::Program;

/// A forward-referenceable code label.
///
/// Created with [`Asm::new_label`], placed with [`Asm::bind`], and
/// consumed by branch/jump/hardware-loop emitters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// One queued item: either a finished instruction or one whose offset
/// field awaits label resolution.
#[derive(Clone, Copy, Debug)]
enum Item {
    Fixed(Instr),
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
    LpSetup {
        l: LoopIdx,
        rs1: Reg,
        end: Label,
    },
    LpSetupi {
        l: LoopIdx,
        count: u32,
        end: Label,
    },
    LpEndi {
        l: LoopIdx,
        end: Label,
    },
    LpStarti {
        l: LoopIdx,
        start: Label,
    },
}

/// The program builder: emit instructions, bind labels, assemble.
///
/// All instructions are emitted in their 32-bit form (deterministic
/// addresses keep hardware-loop offsets trivially correct; RVC is a
/// code-size concern handled separately by
/// [`compress`](rnnasip_isa::compress())).
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug, Default)]
pub struct Asm {
    base: u32,
    items: Vec<Item>,
    /// `labels[i]` = item index the label is bound to (delimits code
    /// *before* that item).
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Creates a builder placing code from byte address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn new(base: u32) -> Self {
        assert!(base.is_multiple_of(4), "code base must be word-aligned");
        Self {
            base,
            items: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a builder-usage bug).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice; each label may be bound once"
        );
        self.labels[label.0] = Some(self.items.len());
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The byte address the next instruction will be placed at.
    pub fn here(&self) -> u32 {
        self.base + 4 * self.items.len() as u32
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.items.push(Item::Fixed(instr));
    }

    // ------------------------------------------------------------------
    // RV32I convenience emitters
    // ------------------------------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        });
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm {
            op: AluImmOp::Slli,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm {
            op: AluImmOp::Srai,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm {
            op: AluImmOp::Srli,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// Load: `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        });
    }

    /// Load halfword (sign-extended): `lh rd, offset(rs1)`
    pub fn lh(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lh,
            rd,
            rs1,
            offset,
        });
    }

    /// Store word: `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store {
            op: StoreOp::Sw,
            rs2,
            rs1,
            offset,
        });
    }

    /// Store halfword: `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store {
            op: StoreOp::Sh,
            rs2,
            rs1,
            offset,
        });
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Item::Branch {
            op,
            rs1,
            rs2,
            target,
        });
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchOp::Bne, rs1, rs2, target);
    }

    /// `bltu rs1, rs2, target`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchOp::Bltu, rs1, rs2, target);
    }

    /// `bnez rs1, target` (pseudo: `bne rs1, zero, target`)
    pub fn bnez(&mut self, rs1: Reg, target: Label) {
        self.bne(rs1, Reg::ZERO, target);
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.items.push(Item::Jal { rd, target });
    }

    /// `j target` (pseudo: `jal zero, target`)
    pub fn j(&mut self, target: Label) {
        self.jal(Reg::ZERO, target);
    }

    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Jalr { rd, rs1, offset });
    }

    /// `ret` (pseudo: `jalr zero, 0(ra)`)
    pub fn ret(&mut self) {
        self.jalr(Reg::ZERO, 0, Reg::RA);
    }

    /// `nop` (pseudo: `addi zero, zero, 0`)
    pub fn nop(&mut self) {
        self.addi(Reg::ZERO, Reg::ZERO, 0);
    }

    /// `mv rd, rs` (pseudo: `addi rd, rs, 0`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Loads a 32-bit constant, emitting one or two instructions
    /// (`addi` alone, or `lui`+`addi`).
    pub fn li(&mut self, rd: Reg, value: i32) {
        if (-2048..2048).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
            return;
        }
        // Split into upper 20 and lower signed 12; the +0x800 trick
        // compensates for the sign extension of the addi immediate.
        let upper = ((value as u32).wrapping_add(0x800) >> 12) as i32;
        let lower = value - (upper << 12);
        self.emit(Instr::Lui {
            rd,
            imm20: upper & 0xFFFFF,
        });
        if lower != 0 {
            self.addi(rd, rd, lower);
        }
    }

    /// `ecall` — conventional program exit.
    pub fn ecall(&mut self) {
        self.emit(Instr::Ecall);
    }

    /// `csrrs rd, csr, zero` — CSR read.
    pub fn csrr(&mut self, rd: Reg, csr: Csr) {
        self.emit(Instr::Csr {
            op: CsrOp::Csrrs,
            rd,
            rs1: Reg::ZERO,
            csr,
        });
    }

    // ------------------------------------------------------------------
    // Xpulp emitters
    // ------------------------------------------------------------------

    /// `p.lw rd, offset(rs1!)` — post-increment load word.
    pub fn lw_post(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::LoadPostInc {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        });
    }

    /// `p.lh rd, offset(rs1!)` — post-increment load halfword.
    pub fn lh_post(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::LoadPostInc {
            op: LoadOp::Lh,
            rd,
            rs1,
            offset,
        });
    }

    /// `p.sw rs2, offset(rs1!)` — post-increment store word.
    pub fn sw_post(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::StorePostInc {
            op: StoreOp::Sw,
            rs2,
            rs1,
            offset,
        });
    }

    /// `p.sh rs2, offset(rs1!)` — post-increment store halfword.
    pub fn sh_post(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::StorePostInc {
            op: StoreOp::Sh,
            rs2,
            rs1,
            offset,
        });
    }

    /// `lp.setup l, rs1, end` — hardware loop with register count; the
    /// body is every instruction between this one and the bind point of
    /// `end`.
    pub fn lp_setup(&mut self, l: LoopIdx, rs1: Reg, end: Label) {
        self.items.push(Item::LpSetup { l, rs1, end });
    }

    /// `lp.setupi l, count, end` — hardware loop with immediate count
    /// (1–31 iterations).
    pub fn lp_setupi(&mut self, l: LoopIdx, count: u32, end: Label) {
        self.items.push(Item::LpSetupi { l, count, end });
    }

    /// `lp.counti l, count`
    pub fn lp_counti(&mut self, l: LoopIdx, count: u32) {
        self.emit(Instr::LpCounti { l, uimm: count });
    }

    /// `lp.count l, rs1`
    pub fn lp_count(&mut self, l: LoopIdx, rs1: Reg) {
        self.emit(Instr::LpCount { l, rs1 });
    }

    /// `lp.starti l, start`
    pub fn lp_starti(&mut self, l: LoopIdx, start: Label) {
        self.items.push(Item::LpStarti { l, start });
    }

    /// `lp.endi l, end`
    pub fn lp_endi(&mut self, l: LoopIdx, end: Label) {
        self.items.push(Item::LpEndi { l, end });
    }

    /// `p.mac rd, rs1, rs2`
    pub fn mac(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Mac { rd, rs1, rs2 });
    }

    /// `p.clip rd, rs1, bits`
    pub fn clip(&mut self, rd: Reg, rs1: Reg, bits: u8) {
        self.emit(Instr::Clip { rd, rs1, bits });
    }

    /// `pv.sdotsp.h rd, rs1, rs2` — packed sum-dot-product accumulate.
    pub fn pv_sdotsp_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::PvDot {
            op: DotOp::SdotSp,
            size: SimdSize::Half,
            rd,
            rs1,
            rs2,
        });
    }

    /// `pv.add.h rd, rs1, rs2`
    pub fn pv_add_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::PvAlu {
            op: PvAluOp::Add,
            size: SimdSize::Half,
            mode: SimdMode::Vv,
            rd,
            rs1,
            rs2,
        });
    }

    // ------------------------------------------------------------------
    // RNN extension emitters
    // ------------------------------------------------------------------

    /// `pl.sdotsp.h.<spr> rd, rs1, rs2` — merged load-and-compute.
    pub fn pl_sdotsp(&mut self, spr: u8, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::PlSdotsp {
            spr,
            size: SimdSize::Half,
            rd,
            rs1,
            rs2,
        });
    }

    /// `pl.sdotsp.b.<spr> rd, rs1, rs2` — the INT8 (four-lane) variant
    /// of the merged load-and-compute instruction (future-work
    /// extension).
    pub fn pl_sdotsp_b(&mut self, spr: u8, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::PlSdotsp {
            spr,
            size: SimdSize::Byte,
            rd,
            rs1,
            rs2,
        });
    }

    /// `pl.tanh rd, rs1`
    pub fn pl_tanh(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::PlTanh { rd, rs1 });
    }

    /// `pl.sig rd, rs1`
    pub fn pl_sig(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::PlSig { rd, rs1 });
    }

    // ------------------------------------------------------------------
    // Assembly
    // ------------------------------------------------------------------

    /// Resolves labels and produces the loadable [`Program`].
    ///
    /// # Errors
    ///
    /// [`AsmError::UnboundLabel`] for labels never bound,
    /// [`AsmError::OffsetOutOfRange`] when a branch/jump/loop offset does
    /// not fit its encoding, and [`AsmError::LoopEndBeforeSetup`] for
    /// hardware loops whose end label is not after the setup instruction.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let addr_of = |item_idx: usize| self.base + 4 * item_idx as u32;
        let resolve = |label: Label| -> Result<u32, AsmError> {
            self.labels[label.0]
                .map(addr_of)
                .ok_or_else(|| AsmError::UnboundLabel {
                    name: format!("L{}", label.0),
                })
        };

        let mut prog = Program::new(self.base);
        for (idx, item) in self.items.iter().enumerate() {
            let pc = addr_of(idx);
            let instr = match *item {
                Item::Fixed(i) => i,
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let offset = resolve(target)? as i64 - pc as i64;
                    if !(-4096..4096).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            mnemonic: op.mnemonic(),
                            offset,
                        });
                    }
                    Instr::Branch {
                        op,
                        rs1,
                        rs2,
                        offset: offset as i32,
                    }
                }
                Item::Jal { rd, target } => {
                    let offset = resolve(target)? as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange {
                            mnemonic: "jal",
                            offset,
                        });
                    }
                    Instr::Jal {
                        rd,
                        offset: offset as i32,
                    }
                }
                Item::LpSetup { l, rs1, end } => {
                    let uimm = self.loop_uimm(pc, resolve(end)?, "lp.setup")?;
                    Instr::LpSetup { l, rs1, uimm }
                }
                Item::LpSetupi { l, count, end } => {
                    let uimm = self.loop_uimm(pc, resolve(end)?, "lp.setupi")?;
                    Instr::LpSetupi { l, count, uimm }
                }
                Item::LpEndi { l, end } => {
                    let uimm = self.loop_uimm(pc, resolve(end)?, "lp.endi")?;
                    Instr::LpEndi { l, uimm }
                }
                Item::LpStarti { l, start } => {
                    let uimm = self.loop_uimm(pc, resolve(start)?, "lp.starti")?;
                    Instr::LpStarti { l, uimm }
                }
            };
            prog.push(instr, 4);
        }
        Ok(prog)
    }

    /// Hardware-loop offsets are unsigned halfword distances from the
    /// setup instruction.
    fn loop_uimm(&self, pc: u32, target: u32, mnemonic: &'static str) -> Result<u32, AsmError> {
        if target <= pc {
            return Err(AsmError::LoopEndBeforeSetup {
                setup_addr: pc,
                end_addr: target,
            });
        }
        let uimm = (target - pc) / 2;
        if uimm >= 4096 {
            return Err(AsmError::OffsetOutOfRange {
                mnemonic,
                offset: (target - pc) as i64,
            });
        }
        Ok(uimm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnnasip_sim::Machine;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0);
        let top = a.new_label();
        let out = a.new_label();
        a.li(Reg::A0, 3);
        a.bind(top);
        a.addi(Reg::A1, Reg::A1, 5);
        a.addi(Reg::A0, Reg::A0, -1);
        a.branch(BranchOp::Beq, Reg::A0, Reg::ZERO, out);
        a.j(top);
        a.bind(out);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(1024);
        m.load_program(&prog);
        m.run(10_000).unwrap();
        assert_eq!(m.core().reg(Reg::A1), 15);
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 42);
        a.li(Reg::A1, 0x12345);
        a.li(Reg::A2, -0x12345);
        a.li(Reg::A3, i32::MIN);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(64);
        m.load_program(&prog);
        m.run(100).unwrap();
        assert_eq!(m.core().reg(Reg::A0), 42);
        assert_eq!(m.core().reg(Reg::A1), 0x12345);
        assert_eq!(m.core().reg(Reg::A2) as i32, -0x12345);
        assert_eq!(m.core().reg(Reg::A3) as i32, i32::MIN);
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut a = Asm::new(0);
        let ghost = a.new_label();
        a.j(ghost);
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn loop_end_must_follow_setup() {
        let mut a = Asm::new(0);
        let before = a.new_label();
        a.bind(before);
        a.nop();
        a.lp_setup(LoopIdx::L0, Reg::A0, before);
        assert!(matches!(
            a.assemble(),
            Err(AsmError::LoopEndBeforeSetup { .. })
        ));
    }

    #[test]
    fn hardware_loop_via_builder_runs() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 7);
        let end = a.new_label();
        a.lp_setup(LoopIdx::L0, Reg::A0, end);
        a.addi(Reg::A1, Reg::A1, 2);
        a.bind(end);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut m = Machine::new(64);
        m.load_program(&prog);
        m.run(1000).unwrap();
        assert_eq!(m.core().reg(Reg::A1), 14);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }
}
