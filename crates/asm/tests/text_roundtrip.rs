// Property-based tests need the external `proptest` crate, which is
// not available in the offline build environment this repository
// targets. Restore the `proptest` dev-dependency and enable the
// `proptest-tests` feature to compile and run this file.
#![cfg(feature = "proptest-tests")]

//! Property test: for every valid instruction word, the disassembly
//! text re-assembles to the identical instruction.
//!
//! Uses the decoder as the instruction generator: random 32-bit words
//! are decoded, and every successfully decoded instruction must survive
//! `parse(format(i)) == i`.

use proptest::prelude::*;
use rnnasip_asm::assemble_text;
use rnnasip_isa::decode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn disassembly_reassembles(word in any::<u32>()) {
        let Ok(instr) = decode(word) else {
            return Ok(()); // not a valid instruction; nothing to check
        };
        let text = instr.to_string();
        let prog = assemble_text(0, &text).map_err(|e| {
            TestCaseError::fail(format!("`{text}` failed to parse: {e}"))
        })?;
        prop_assert_eq!(prog.len(), 1, "`{}` produced multiple instructions", text);
        let reparsed = prog.iter().next().expect("one instruction").instr;
        prop_assert_eq!(reparsed, instr, "text was `{}`", text);
    }
}

/// Whole-program round trip with labels and pseudo-ops.
#[test]
fn structured_program_survives_reformatting() {
    let source = r"
        li   s0, 0x4000
        li   t0, 16
        lp.setup 0, t0, done
        p.lw a0, 4(s0!)
        pv.sdotsp.h a4, a0, a0
    done:
        pl.sdotsp.b.1 a5, s0, a0
        pv.add.sc.b t1, t2, t3
        pv.sra.sci.h t4, t5, -7
        p.clipu a6, a6, 12
        p.extbz a7, a7
        csrrw zero, lpcount1, a0
        ecall
    ";
    let p1 = assemble_text(0, source).expect("assembles");
    let text: String = p1.iter().map(|i| format!("{}\n", i.instr)).collect();
    let p2 = assemble_text(0, &text).expect("reassembles");
    let a: Vec<_> = p1.iter().map(|i| i.instr).collect();
    let b: Vec<_> = p2.iter().map(|i| i.instr).collect();
    assert_eq!(a, b);
}
