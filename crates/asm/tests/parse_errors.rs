//! Error-path coverage of the text assembler: every malformed input
//! must produce a located, descriptive error — never a panic or a
//! silently wrong program.

use rnnasip_asm::{assemble_text, AsmError};

fn parse_err(src: &str) -> (usize, String) {
    match assemble_text(0, src) {
        Err(AsmError::Parse { line, msg }) => (line, msg),
        other => panic!("expected parse error for {src:?}, got {other:?}"),
    }
}

#[test]
fn unknown_mnemonic() {
    let (line, msg) = parse_err("nop\nfrobnicate a0, a1\n");
    assert_eq!(line, 2);
    assert!(msg.contains("frobnicate"), "{msg}");
}

#[test]
fn bad_register_name() {
    let (_, msg) = parse_err("addi q7, zero, 1");
    assert!(msg.contains("q7"), "{msg}");
}

#[test]
fn wrong_operand_count() {
    let (_, msg) = parse_err("add a0, a1");
    assert!(msg.contains("expects 3 operands"), "{msg}");
    let (_, msg) = parse_err("ecall a0");
    assert!(msg.contains("expects 0 operands"), "{msg}");
}

#[test]
fn bad_immediate() {
    let (_, msg) = parse_err("addi a0, a0, twelve");
    assert!(msg.contains("twelve"), "{msg}");
}

#[test]
fn malformed_memory_operand() {
    let (_, msg) = parse_err("lw a0, 4[a1]");
    assert!(msg.contains("memory operand"), "{msg}");
    // Post-increment on the base form needs the p.-prefixed mnemonic.
    let (_, msg) = parse_err("lw a0, 4(a1!)");
    assert!(msg.contains("p.-prefixed"), "{msg}");
    // Register offsets likewise.
    let (_, msg) = parse_err("sw a0, a2(a1)");
    assert!(msg.contains("register-offset"), "{msg}");
}

#[test]
fn p_load_requires_postinc_or_reg_offset() {
    let (_, msg) = parse_err("p.lw a0, 4(a1)");
    assert!(msg.contains("imm(base!)"), "{msg}");
}

#[test]
fn bad_loop_index() {
    let (_, msg) = parse_err("lp.counti 2, 10");
    assert!(msg.contains("loop index"), "{msg}");
}

#[test]
fn bad_simd_forms() {
    let (_, msg) = parse_err("pv.bogus.h a0, a1, a2");
    assert!(msg.contains("bogus"), "{msg}");
    let (_, msg) = parse_err("pv.add.q a0, a1, a2");
    assert!(msg.contains("SIMD size"), "{msg}");
    let (_, msg) = parse_err("pv.sdotsp.sc.h a0, a1, a2");
    assert!(msg.contains("vector mode"), "{msg}");
}

#[test]
fn unbound_label_surfaces_by_name() {
    let err = assemble_text(0, "j nowhere\n").unwrap_err();
    match err {
        AsmError::UnboundLabel { name } => assert!(!name.is_empty()),
        other => panic!("expected unbound label, got {other:?}"),
    }
}

#[test]
fn branch_out_of_range_is_reported() {
    // A conditional branch across >4 KiB of code.
    let mut src = String::from("bnez a0, far\n");
    for _ in 0..1100 {
        src.push_str("nop\n");
    }
    src.push_str("far:\necall\n");
    let err = assemble_text(0, &src).unwrap_err();
    assert!(matches!(err, AsmError::OffsetOutOfRange { .. }), "{err:?}");
}

#[test]
fn loop_offset_out_of_range_is_reported() {
    let mut src = String::from("li t0, 4\nlp.setup 0, t0, far\n");
    for _ in 0..4100 {
        src.push_str("nop\n");
    }
    src.push_str("far:\necall\n");
    let err = assemble_text(0, &src).unwrap_err();
    assert!(matches!(err, AsmError::OffsetOutOfRange { .. }), "{err:?}");
}
