//! City serving: a simulated city of UEs, served under deadlines.
//!
//! `rnnasip::rrm::traffic` generates the load — each traffic class
//! pairs one RRM environment with its policy network (spectrum access →
//! `naparstek2019`, power control → `eisen2019`, LTE-U coexistence →
//! `challita2017`) and a population of UEs whose seeded Poisson
//! arrivals follow a diurnal curve with burst episodes. The
//! deadline-aware [`Front`] micro-batches those arrivals out of a
//! bounded EDF admission queue onto an [`EnginePool`], and accounts
//! latency and deadline goodput against *virtual servers* — so the
//! numbers printed here are byte-identical on every machine and at any
//! pool worker count; only the wall-clock time varies.
//!
//! ```text
//! cargo run --example city_serving
//! ```
//!
//! [`Front`]: rnnasip::core::serve::Front
//! [`EnginePool`]: rnnasip::core::serve::EnginePool

use rnnasip::core::serve::{EnginePool, Front, FrontConfig, OverloadPolicy};
use rnnasip::rrm::traffic::{CityConfig, CityTraffic};

fn serve(city: &CityConfig, pool: &EnginePool, label: &str, servers: usize, queue_cap: usize) {
    let cfg = FrontConfig {
        servers,
        batch_window: 100_000, // 0.5 ms at the 200 MHz virtual clock
        max_batch: queue_cap.min(16),
        queue_cap,
        policy: OverloadPolicy::ShedOldest,
        classes: city.classes.len(),
    };
    let report = Front::new(pool, cfg).serve(CityTraffic::new(city));

    println!("— {label}: {servers} virtual server(s), {queue_cap}-slot queue —");
    println!(
        "{:<10} {:>8} {:>7} {:>6} {:>9} {:>10} {:>10}",
        "class", "offered", "served", "shed", "goodput", "p50 (ms)", "p99 (ms)"
    );
    let ms = |cycles: u64| cycles as f64 * 1e3 / city.clock_hz as f64;
    for (spec, stats) in city.classes.iter().zip(&report.per_class) {
        println!(
            "{:<10} {:>8} {:>7} {:>6} {:>8.1}% {:>10.3} {:>10.3}",
            spec.name,
            stats.offered,
            stats.served,
            stats.shed,
            stats.goodput_ppm() as f64 / 10_000.0,
            ms(stats.latency.p50()),
            ms(stats.latency.p99()),
        );
    }
    let total = report.aggregate();
    println!(
        "{:<10} {:>8} {:>7} {:>6} {:>8.1}%   (max queue {}, batches {})\n",
        "total",
        total.offered,
        total.served,
        total.shed,
        total.goodput_ppm() as f64 / 10_000.0,
        report.max_queue,
        report.batches,
    );
}

fn main() {
    // The debug-sized demo city: the bench-scale city (~130k requests)
    // lives in `cargo bench -p rnnasip-bench --bench traffic_serving`.
    let city = CityConfig::demo_city(42);
    println!(
        "city: {} UEs in {} classes, {:.2} virtual s at {} MHz\n",
        city.classes.iter().map(|c| c.ues).sum::<u64>(),
        city.classes.len(),
        city.horizon_s,
        city.clock_hz / 1_000_000
    );

    let pool = EnginePool::with_workers(2);
    // Starved: one virtual server behind a two-slot queue — admission
    // control sheds (EDF head first) rather than letting a backlog grow
    // without bound.
    serve(&city, &pool, "starved", 1, 2);
    // Provisioned: four virtual servers and a deeper queue — everything
    // is served and the deadline goodput approaches 100%.
    serve(&city, &pool, "provisioned", 4, 32);

    println!(
        "The tables above are virtual-time quantities: rerun this example \
         anywhere,\nwith any pool width, and they reproduce byte-for-byte."
    );
}
