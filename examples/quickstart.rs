//! Quickstart: compile a small network **once** for the RNN-extended
//! core, then run the compiled engine many times on the instruction-set
//! simulator, verifying bit-exactness against the golden model.
//!
//! The compile-once / run-many split is the library's intended shape:
//! [`KernelBackend::compile_network`] produces a reusable
//! `CompiledNetwork` (assembled program + staged memory image), and its
//! [`Engine`] executes inferences by patching only the input window and
//! restoring only the memory the previous run dirtied.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rnnasip::core::{KernelBackend, OptLevel};
use rnnasip::nn::{Network, Stage};
use rnnasip::rrm::{seeded_fc_layer, seeded_input};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32->16 ReLU layer with seeded synthetic Q3.12 weights, wrapped
    // as a one-stage network (the unit the compiler works on).
    let layer = seeded_fc_layer(32, 16, 42);
    let net = Network::new("quickstart", vec![Stage::Fc(layer)]);

    println!("fc 32->16, compiled once per level, run on 3 inputs each:\n");
    println!(
        "{:<28} {:>8} {:>8} {:>9} {:>8}",
        "level", "cycles", "instrs", "cyc/MAC", "exact"
    );
    for level in OptLevel::ALL {
        // Compile once: assemble the kernel and stage the weights.
        let compiled = KernelBackend::new(level).compile_network(&net)?;
        let mut engine = compiled.engine();

        // Run many: each call patches the input, restores dirty memory,
        // and simulates — no recompilation, no re-staging.
        let mut exact = true;
        let mut last = None;
        for seed in [7u64, 8, 9] {
            let input = seeded_input(32, seed);
            let run = engine.run(std::slice::from_ref(&input))?;
            exact &= run.outputs == net.forward_fixed(&[input]);
            last = Some(run.report);
        }
        let report = last.expect("ran");
        println!(
            "{:<28} {:>8} {:>8} {:>9.3} {:>8}",
            level.column(),
            report.cycles(),
            report.instrs(),
            report.cycles_per_mac(),
            if exact { "yes" } else { "NO!" }
        );
    }

    // The golden model is plain Rust — no simulator involved.
    let expected = net.forward_fixed(&[seeded_input(32, 7)]);
    println!("\nFirst outputs (input seed 7): ");
    for (i, o) in expected.iter().take(4).enumerate() {
        println!("  o[{i}] = {:+.4}", o.to_f64());
    }
    Ok(())
}
