//! Quickstart: compile a small fully-connected layer for the RNN-extended
//! core, run it on the instruction-set simulator at two optimization
//! levels, and verify bit-exactness against the golden model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rnnasip::core::{KernelBackend, OptLevel};
use rnnasip::rrm::{seeded_fc_layer, seeded_input};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32->16 ReLU layer with seeded synthetic Q3.12 weights.
    let layer = seeded_fc_layer(32, 16, 42);
    let input = seeded_input(32, 7);

    // Golden fixed-point reference (plain Rust, no simulator).
    let expected = layer.forward_fixed(&input);

    println!("fc 32->16 on the simulated core:\n");
    println!(
        "{:<28} {:>8} {:>8} {:>9} {:>8}",
        "level", "cycles", "instrs", "cyc/MAC", "exact"
    );
    for level in OptLevel::ALL {
        let run = KernelBackend::new(level).run_fc(&layer, &input)?;
        println!(
            "{:<28} {:>8} {:>8} {:>9.3} {:>8}",
            level.column(),
            run.report.cycles(),
            run.report.instrs(),
            run.report.cycles_per_mac(),
            if run.outputs == expected {
                "yes"
            } else {
                "NO!"
            }
        );
    }

    println!("\nFirst outputs: ");
    for (i, o) in expected.iter().take(4).enumerate() {
        println!("  o[{i}] = {:+.4}", o.to_f64());
    }
    Ok(())
}
