//! Proactive LTE-U duty-cycle selection with the `[13]` LSTM network.
//!
//! The Challita et al. task (the paper's largest LSTM benchmark): an
//! LTE-U cell observes 10 frames of WiFi occupancy features and picks
//! its unlicensed-band duty cycle *ahead of time*. The example runs the
//! full `[13]` network on the simulated extended core over a window of
//! sensing frames, scores the decision against a constant-duty policy
//! and the oracle, and reports the per-decision compute budget.
//!
//! ```text
//! cargo run --release --example lte_coexistence
//! ```

use rnnasip::core::OptLevel;
use rnnasip::rrm::env::LteCoexEnv;
use rnnasip::rrm::EngineCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = rnnasip::rrm::suite();
    let net = &suite[0];
    assert_eq!(net.id, "challita2017");
    println!(
        "network: {} ({}), {} MACs/inference",
        net.id,
        net.task,
        net.network.mac_count()
    );

    let steps = net.network.seq_len();
    let subbands = net.network.n_in() / 2;
    let mut env = LteCoexEnv::new(subbands, 99);
    // An EngineCache compiles the network on the first decision and
    // serves every later frame from the warm engine — the shape a
    // scheduler serving several policies at once would use.
    let cache = EngineCache::new();
    let level = OptLevel::IfmTile;

    // Warm the sensing window.
    let mut window = Vec::new();
    for _ in 0..steps {
        window.push(env.features());
        env.step();
    }

    let frames = 10;
    let (mut nn_u, mut const_u, mut oracle_u) = (0.0, 0.0, 0.0);
    let mut cycles = 0u64;
    for f in 0..frames {
        let run = cache.run(&net.network, level, &window)?;
        // First output in [0,1] is the duty cycle.
        let duty = (run.outputs[0].to_f64() * 0.5 + 0.5).clamp(0.0, 1.0);
        let nn = env.apply_duty_cycle(duty);
        let constant = env.apply_duty_cycle(0.5);
        let oracle = env.apply_duty_cycle(env.oracle_duty());
        nn_u += nn.utility;
        const_u += constant.utility;
        oracle_u += oracle.utility;
        cycles += run.report.cycles();
        println!(
            "frame {f}: duty {duty:.2} -> airtime {:.2}, collisions {:.2}, utility {:+.2}",
            nn.lte_airtime, nn.wifi_collision, nn.utility
        );
        env.step();
        window.remove(0);
        window.push(env.features());
    }

    println!("\ncumulative utility over {frames} frames:");
    println!("  network   : {nn_u:+.2} (untrained synthetic weights)");
    println!("  constant .5: {const_u:+.2}");
    println!("  oracle    : {oracle_u:+.2}");
    println!(
        "\ncompute: {} kcycles/decision = {:.0} us @ 380 MHz ({}x under a 1 ms frame)",
        cycles / frames / 1000,
        cycles as f64 / frames as f64 / 380e6 * 1e6,
        (1e-3 / (cycles as f64 / frames as f64 / 380e6)) as u64
    );
    Ok(())
}
