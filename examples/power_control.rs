//! Downlink power control on the RNN-extended core.
//!
//! Reproduces the paper's motivating scenario (Section I): an RRM
//! decision — here transmit-power selection for 10 interfering links —
//! must complete "in the frame of milliseconds". The example runs the
//! `[12]`-style power-control MLP on the simulated extended core for a
//! sequence of fading states, applies its decisions in a synthetic
//! interference environment, and reports both radio performance
//! (sum rate vs. the max-power baseline) and compute performance
//! (latency at 380 MHz, energy per decision).
//!
//! ```text
//! cargo run --release --example power_control
//! ```

use rnnasip::core::{KernelBackend, OptLevel};
use rnnasip::energy::{report, PowerModel};
use rnnasip::rrm::env::PowerControlEnv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_pairs = 10;
    let mut env = PowerControlEnv::new(n_pairs, 2026);

    // The [12] nasir2018 benchmark network: 100 gain features in,
    // 120 outputs; we read the first 10 as per-link power levels.
    let suite = rnnasip::rrm::suite();
    let net = &suite[5];
    assert_eq!(net.id, "nasir2018");
    println!(
        "network: {} ({}), {} MACs/inference\n",
        net.id,
        net.task,
        net.network.mac_count()
    );

    // Compile once — the decision loop reuses one warm engine, paying
    // only input patching, simulation, and a dirty-block restore per
    // scheduling interval instead of recompiling the kernel.
    let mut engine = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net.network)?
        .engine();
    let model = PowerModel::gf22fdx_065v();

    let intervals = 5;
    let mut nn_rate = 0.0;
    let mut max_rate = 0.0;
    let mut total_cycles = 0u64;
    let mut last_stats = None;
    for t in 0..intervals {
        let features = env.features();
        let run = engine.run(&[features])?;
        // Map the first n outputs through [0,1] as power levels.
        let powers: Vec<f64> = run.outputs[..n_pairs]
            .iter()
            .map(|q| (q.to_f64() * 0.5 + 0.5).clamp(0.0, 1.0))
            .collect();
        let r_nn = env.sum_rate(&powers);
        let r_max = env.sum_rate(&vec![1.0; n_pairs]);
        nn_rate += r_nn;
        max_rate += r_max;
        total_cycles += run.report.cycles();
        println!(
            "interval {t}: sum-rate nn {:.2} vs max-power {:.2} bit/s/Hz ({} kcycles)",
            r_nn,
            r_max,
            run.report.cycles() / 1000
        );
        last_stats = Some(run.report);
        env.step();
    }

    let report = report(last_stats.expect("ran").stats(), &model);
    let latency_us = (total_cycles as f64 / intervals as f64) / model.freq_hz * 1e6;
    println!("\ncompute summary (extended core @ 380 MHz):");
    println!("  latency/decision : {latency_us:.1} us  (well inside the ms-scale RRM deadline)");
    println!("  power            : {:.2} mW", report.power.total);
    println!(
        "  energy/decision  : {:.2} uJ",
        report.power.total * 1e-3 * latency_us
    );
    println!(
        "\nradio summary: untrained synthetic net reaches {:.0}% of the max-power sum rate",
        100.0 * nn_rate / max_rate
    );
    println!("(weights are synthetic — the point is the compute path, not the policy)");
    Ok(())
}
