//! INT8 inference on the extended core (the paper's future-work path).
//!
//! Quantizes a Q3.12 layer down to Q1.6, runs it with the two INT8
//! kernels — `pv.sdotsp.b` (implementable on the paper's core) and the
//! `pl.sdotsp.b` extension (four MACs per merged load-and-compute) —
//! and reports the throughput gain and the quantization cost.
//!
//! Single-layer one-shot runs have no inference loop, so this example
//! stays on the layer-level `run_fc`/`run_fc8` API rather than the
//! compile-once `CompiledNetwork`/`Engine` path.
//!
//! ```text
//! cargo run --release --example int8_inference
//! ```

use rnnasip::core::{Int8Kernel, KernelBackend, OptLevel};
use rnnasip::nn::{quantize_input8, FcLayer8};
use rnnasip::rrm::{seeded_fc_layer, seeded_input};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = seeded_fc_layer(96, 64, 11);
    let input = seeded_input(96, 12);
    let layer8 = FcLayer8::quantize_from(&layer);
    let input8 = quantize_input8(&input);

    println!("fc 96->64, Q3.12 vs INT8 (Q1.6):\n");
    let q16 = KernelBackend::new(OptLevel::IfmTile).run_fc(&layer, &input)?;
    let pv8 =
        KernelBackend::new(OptLevel::IfmTile).run_fc8(&layer8, &input8, Int8Kernel::PvSdot)?;
    let pl8 =
        KernelBackend::new(OptLevel::IfmTile).run_fc8(&layer8, &input8, Int8Kernel::PlSdotB)?;

    println!(
        "{:<36} {:>8} {:>9} {:>9}",
        "kernel", "cycles", "cyc/MAC", "speedup"
    );
    let base = q16.report.cycles() as f64;
    for (name, cycles, cpm) in [
        (
            "Q3.12 pl.sdotsp.h (paper level e)",
            q16.report.cycles(),
            q16.report.cycles_per_mac(),
        ),
        (
            "INT8 pv.sdotsp.b (paper-compatible)",
            pv8.report.cycles(),
            pv8.report.cycles_per_mac(),
        ),
        (
            "INT8 pl.sdotsp.b (extension)",
            pl8.report.cycles(),
            pl8.report.cycles_per_mac(),
        ),
    ] {
        println!(
            "{:<36} {:>8} {:>9.3} {:>8.2}x",
            name,
            cycles,
            cpm,
            base / cycles as f64
        );
    }

    // Quantization cost: INT8 outputs vs the Q3.12 reference.
    let out16 = layer.forward_fixed(&input);
    let max_err = out16
        .iter()
        .zip(&pl8.outputs)
        .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
        .fold(0.0f64, f64::max);
    let rms: f64 = (out16
        .iter()
        .zip(&pl8.outputs)
        .map(|(a, b)| (a.to_f64() - b.to_f64()).powi(2))
        .sum::<f64>()
        / out16.len() as f64)
        .sqrt();
    println!("\nquantization cost vs Q3.12: max |Δ| = {max_err:.3}, rms = {rms:.3}");
    println!("(Q1.6 resolution is 0.0156; the paper keeps 16-bit precisely to avoid");
    println!(" retraining — this example quantifies what the INT8 shortcut costs)");
    Ok(())
}
