//! A tour of the RNN-extended ISA: hand-written assembly using the
//! paper's instructions, assembled with the text assembler and executed
//! on the simulator.
//!
//! The snippet computes a 4-output dot-product tile exactly in the
//! Table II style — SPR preloads, one input load per iteration, merged
//! load-and-compute `pl.sdotsp.h`, and a `pl.sig` activation.
//!
//! This example drives the assembler and [`Machine`] directly — there is
//! no network or inference loop, so the compile-once
//! `CompiledNetwork`/`Engine` API does not apply.
//!
//! ```text
//! cargo run --example isa_tour
//! ```

use rnnasip::asm::assemble_text;
use rnnasip::fixed::Q3p12;
use rnnasip::sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Data layout: weights (4 rows x 6 inputs) at 0x1000, inputs at
    // 0x2000, outputs at 0x3000.
    let source = r"
        # -- pointers ------------------------------------------------
        li   s0, 0x1000        # weight row 0
        addi s1, s0, 12        # weight row 1 (6 halfwords)
        addi s2, s1, 12        # weight row 2
        addi s3, s2, 12        # weight row 3
        li   a0, 0x2000        # input stream
        li   a1, 0x3000        # outputs
        li   a4, 0             # accumulators
        li   a5, 0
        li   a6, 0
        li   a7, 0
        # -- preload the two special-purpose registers ----------------
        pl.sdotsp.h.0 zero, s0, zero
        pl.sdotsp.h.1 zero, s1, zero
        # -- Table II inner loop: 3 packed pairs ----------------------
        lp.setupi 0, 3, loop_end
        p.lw t0, 4(a0!)
        pl.sdotsp.h.0 a4, s2, t0
        pl.sdotsp.h.1 a5, s3, t0
        pl.sdotsp.h.0 a6, s0, t0
        pl.sdotsp.h.1 a7, s1, t0
    loop_end:
        # -- requantize, activate, store ------------------------------
        srai a4, a4, 12
        p.clip a4, a4, 16
        pl.sig a4, a4
        p.sh a4, 2(a1!)
        srai a5, a5, 12
        p.clip a5, a5, 16
        pl.sig a5, a5
        p.sh a5, 2(a1!)
        srai a6, a6, 12
        p.clip a6, a6, 16
        pl.sig a6, a6
        p.sh a6, 2(a1!)
        srai a7, a7, 12
        p.clip a7, a7, 16
        pl.sig a7, a7
        p.sh a7, 2(a1!)
        ecall
    ";

    let prog = assemble_text(0, source)?;
    println!(
        "assembled {} instructions ({} bytes)\n",
        prog.len(),
        prog.code_size()
    );
    println!("disassembly of the inner loop:");
    for item in prog.iter().skip(12).take(6) {
        println!("  {:#06x}: {}", item.addr, item.instr);
    }

    let mut m = Machine::new(64 * 1024);
    // Stage weights (rows of 6) and inputs.
    let weights: Vec<Q3p12> = (0..24)
        .map(|i| Q3p12::from_f64(((i % 7) as f64 - 3.0) / 8.0))
        .collect();
    let inputs: Vec<Q3p12> = (0..6)
        .map(|i| Q3p12::from_f64((i as f64 - 2.5) / 2.0))
        .collect();
    m.mem_mut().write_q3p12_slice(0x1000, &weights)?;
    m.mem_mut().write_q3p12_slice(0x2000, &inputs)?;
    m.load_program(&prog);
    m.run(10_000)?;

    // Golden check in plain Rust.
    println!("\noutputs (sigmoid of each row dot product):");
    for o in 0..4 {
        let got = m.mem().read_q3p12_slice(0x3000 + 2 * o as u32, 1)?[0];
        let mut acc = rnnasip::fixed::Acc32::ZERO;
        for i in 0..6 {
            acc = acc.mac(weights[o * 6 + i], inputs[i]);
        }
        let expect = rnnasip::fixed::hw_sig(acc.requantize());
        println!(
            "  o[{o}] = {:+.4} (golden {:+.4}) {}",
            got.to_f64(),
            expect.to_f64(),
            if got == expect { "ok" } else { "MISMATCH" }
        );
    }

    println!("\nexecution statistics:");
    print!("{}", m.stats());
    println!(
        "cycles {} / instructions {}",
        m.stats().cycles(),
        m.stats().instrs()
    );
    Ok(())
}
