//! Dynamic spectrum access with the LSTM benchmark network.
//!
//! Drives the `[14]`-style LSTM (the paper's activation-heavy network)
//! with a sliding window of noisy channel observations from a
//! Gilbert–Elliott environment, picks the channel the network scores
//! highest, and compares its hit rate against random access and the
//! oracle. Also shows the Section III-D effect: the LSTM's cycle count
//! with and without the `pl.tanh`/`pl.sig` instructions.
//!
//! ```text
//! cargo run --release --example spectrum_access
//! ```

use rnnasip::core::{KernelBackend, OptLevel};
use rnnasip::rrm::env::SpectrumAccessEnv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 8; // channels == the [14] network's per-step input width
    let mut env = SpectrumAccessEnv::new(k, 7);
    let suite = rnnasip::rrm::suite();
    let net = &suite[1];
    assert_eq!(net.id, "naparstek2019");
    println!("network: {} ({})\n", net.id, net.task);

    let steps = net.network.seq_len();
    // Compile the LSTM once; every decision slot reuses the warm engine.
    let mut engine = KernelBackend::new(OptLevel::IfmTile)
        .compile_network(&net.network)?
        .engine();

    // Warm an observation window, then make decisions on a rolling basis.
    let mut window: Vec<Vec<rnnasip::fixed::Q3p12>> = Vec::new();
    for _ in 0..steps {
        window.push(env.observe());
        env.step();
    }

    let trials = 12;
    let (mut hits, mut rand_hits) = (0u32, 0u32);
    let mut cycles = 0u64;
    for t in 0..trials {
        let run = engine.run(&window)?;
        // Choose the best-scored channel (first k outputs).
        let choice = run.outputs[..k]
            .iter()
            .enumerate()
            .max_by_key(|(_, q)| q.raw())
            .map(|(i, _)| i)
            .expect("k > 0");
        let rand_choice = t % k;
        if env.attempt(choice) {
            hits += 1;
        }
        if env.attempt(rand_choice) {
            rand_hits += 1;
        }
        cycles += run.report.cycles();
        env.step();
        window.remove(0);
        window.push(env.observe());
    }

    println!("{trials} decision slots:");
    println!(
        "  network hit rate : {:.0}%",
        100.0 * hits as f64 / trials as f64
    );
    println!(
        "  random hit rate  : {:.0}%",
        100.0 * rand_hits as f64 / trials as f64
    );
    println!("  avg free fraction: {:.0}%", 100.0 * env.free_fraction());
    println!(
        "  avg cycles/decision: {} ({:.1} us @ 380 MHz)\n",
        cycles / trials as u64,
        cycles as f64 / trials as f64 / 380e6 * 1e6
    );

    // Section III-D: the tanh/sig extension inside this LSTM-heavy net.
    // These are one-shot comparisons, so the one-shot path fits.
    let with_ext = KernelBackend::new(OptLevel::OfmTile)
        .run_network(&net.network, &window)?
        .report;
    let sw_acts = KernelBackend::new(OptLevel::Xpulp)
        .run_network(&net.network, &window)?
        .report;
    println!("activation-extension effect on this network (c vs b kernels):");
    println!(
        "  software PLA: {} kcycles; pl.tanh/pl.sig: {} kcycles",
        sw_acts.cycles() / 1000,
        with_ext.cycles() / 1000
    );
    println!(
        "  (the paper reports tanh/sig eating up to 33.6% of cycles in [14]; \
         hardware activations remove that term)"
    );
    Ok(())
}
