//! # rnnasip — RNN-extended RISC-V ASIP for 5G Radio Resource Management
//!
//! Facade crate for the reproduction of *Andri, Henriksson, Benini:
//! "Extending the RISC-V ISA for Efficient RNN-based 5G Radio Resource
//! Management" (DAC 2020)*. It re-exports the workspace crates so examples
//! and downstream users need a single dependency:
//!
//! * [`fixed`] — Q3.12 fixed-point arithmetic.
//! * [`isa`] — RV32IM(C) + Xpulp + RNN-extension instruction model.
//! * [`sim`] — RI5CY-like cycle-approximate instruction-set simulator.
//! * [`asm`] — assembler and program builder.
//! * [`nn`] — golden float/fixed neural-network models and the piecewise
//!   linear tanh/sigmoid design.
//! * [`core`] — the paper's contribution: optimized kernel generators at all
//!   five optimization levels, plus run/verify harnesses.
//! * [`rrm`] — the 10-network RRM benchmark suite and task environments.
//! * [`energy`] — calibrated area / power / energy-efficiency model.
//!
//! # Quickstart
//!
//! ```
//! use rnnasip::core::{KernelBackend, OptLevel};
//! use rnnasip::nn::FcLayer;
//! use rnnasip::rrm::seeded_fc_layer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small fully-connected layer with seeded synthetic weights…
//! let layer: FcLayer = seeded_fc_layer(16, 8, 42);
//! let input = rnnasip::rrm::seeded_input(16, 7);
//!
//! // …compiled for the extended core and executed on the simulator:
//! let backend = KernelBackend::new(OptLevel::SdotSp);
//! let run = backend.run_fc(&layer, &input)?;
//! assert_eq!(run.outputs.len(), 8);
//! println!("cycles: {}", run.report.cycles());
//! # Ok(())
//! # }
//! ```

pub use rnnasip_asm as asm;
pub use rnnasip_core as core;
pub use rnnasip_energy as energy;
pub use rnnasip_fixed as fixed;
pub use rnnasip_isa as isa;
pub use rnnasip_nn as nn;
pub use rnnasip_rrm as rrm;
pub use rnnasip_sim as sim;
