//! Section III-A / III-D: Q3.12 with PLA activations introduces no
//! significant end-to-end accuracy loss ("no deterioration of the
//! end-to-end error"), so no quantization-aware retraining is needed.
//! Verified here by comparing the fixed-point golden models against
//! double precision on every benchmark network.

#[test]
fn fixed_point_tracks_float_on_every_suite_network() {
    for net in rnnasip::rrm::suite() {
        let input_q = net.input();
        let input_f: Vec<Vec<f64>> = input_q
            .iter()
            .map(|v| v.iter().map(|q| q.to_f64()).collect())
            .collect();
        let out_q = net.network.forward_fixed(&input_q);
        let out_f = net.network.forward_f64(&input_f);
        assert_eq!(out_q.len(), out_f.len());
        let mut max_err: f64 = 0.0;
        let mut rms = 0.0;
        for (q, f) in out_q.iter().zip(&out_f) {
            let e = (q.to_f64() - f).abs();
            max_err = max_err.max(e);
            rms += e * e;
        }
        rms = (rms / out_f.len() as f64).sqrt();
        // Outputs live in roughly [-8, 8); a few hundredths of absolute
        // error after multiple quantized layers is the Q3.12 noise floor
        // the paper accepts.
        assert!(
            max_err < 0.25,
            "{}: max fixed-vs-float error {max_err}",
            net.id
        );
        assert!(rms < 0.1, "{}: rms fixed-vs-float error {rms}", net.id);
    }
}

#[test]
fn pla_activation_error_does_not_accumulate_catastrophically() {
    // Iterating tanh through the PLA unit many times stays bounded.
    let mut x = rnnasip::fixed::Q3p12::from_f64(0.9);
    let mut x_ref = 0.9f64;
    for _ in 0..50 {
        x = rnnasip::fixed::hw_tanh(x);
        x_ref = x_ref.tanh();
    }
    assert!(
        (x.to_f64() - x_ref).abs() < 0.05,
        "{} vs {}",
        x.to_f64(),
        x_ref
    );
}
