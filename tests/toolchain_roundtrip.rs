//! Toolchain integration: generated kernel programs survive the full
//! encode → bytes → decode round trip, and text assembly round-trips
//! through the disassembler.

use rnnasip::asm::{assemble_text, Asm};
use rnnasip::sim::{Machine, Program};
use rnnasip_isa::Reg;

#[test]
fn generated_kernel_binary_round_trips() {
    // Use the Table II generator to get a real kernel program.
    let (ofm, sdotsp) = rnnasip::core::kernels::fc::table2_listing();
    for listing in [ofm, sdotsp] {
        let prog = assemble_text(0, &listing).expect("listing reassembles");
        let bytes = prog.to_bytes();
        let back = Program::from_bytes(0, &bytes).expect("binary decodes");
        let a: Vec<_> = prog.iter().map(|i| i.instr).collect();
        let b: Vec<_> = back.iter().map(|i| i.instr).collect();
        assert_eq!(a, b);
    }
}

#[test]
fn disassembly_of_any_suite_kernel_reassembles() {
    // Build a program with the builder, print it, re-assemble it, and
    // run both — identical architectural results.
    let mut a = Asm::new(0);
    a.li(Reg::A0, 1000);
    a.li(Reg::A1, 0);
    let end = a.new_label();
    a.lp_setup(rnnasip_isa::LoopIdx::L0, Reg::A0, end);
    a.add(Reg::A1, Reg::A1, Reg::A0);
    a.bind(end);
    a.ecall();
    let prog = a.assemble().expect("assembles");

    let text: String = prog.iter().map(|i| format!("{}\n", i.instr)).collect();
    let reparsed = assemble_text(0, &text).expect("round trip");

    let run = |p: &Program| {
        let mut m = Machine::new(1024);
        m.load_program(p);
        m.run(100_000).expect("halts");
        (m.core().reg(Reg::A1), m.stats().cycles())
    };
    assert_eq!(run(&prog), run(&reparsed));
}

#[test]
fn compressed_round_trip_shrinks_code() {
    // A compressible scalar program: emitted 32-bit, compressed via the
    // RVC encoder, decoded back — same instruction stream, smaller image.
    let src = r"
        li   a0, 5
        li   a1, 0
    top:
        add  a1, a1, a0
        addi a0, a0, -1
        bnez a0, top
        ecall
    ";
    let prog = assemble_text(0, src).expect("assembles");
    let mut compressed = 0usize;
    for item in prog.iter() {
        if let Some(half) = rnnasip_isa::compress(&item.instr) {
            let back = rnnasip_isa::decode_compressed(half).expect("expands");
            assert_eq!(back, item.instr);
            compressed += 1;
        }
    }
    // The alu/branch body of this loop is RVC-compressible.
    assert!(compressed >= 3, "only {compressed} compressible");
}

#[test]
fn mcycle_matches_harness_cycle_count() {
    // The program reads its own cycle counter right before ecall; the
    // CSR value must equal the harness count at that point.
    let src = r"
        li   t0, 50
    top:
        addi t0, t0, -1
        bnez t0, top
        csrr a0, mcycle
        ecall
    ";
    let prog = assemble_text(0, src).expect("assembles");
    let mut m = Machine::new(256);
    m.load_program(&prog);
    m.run(100_000).expect("halts");
    let csr_value = m.core().reg(Reg::A0) as u64;
    // cycles at the CSR read = total - csrr(1) - ecall(1).
    assert_eq!(csr_value, m.stats().cycles() - 2);
}
