//! Deployment flow: every benchmark network serializes, reloads, and
//! produces bit-identical results — both on the golden models and when
//! compiled and run on the simulated core.

use rnnasip::core::{KernelBackend, OptLevel};
use rnnasip::nn::io::{load_network, save_network};

#[test]
fn every_suite_network_round_trips_through_the_binary_format() {
    for net in rnnasip::rrm::suite() {
        let bytes = save_network(&net.network);
        let back =
            load_network(&bytes).unwrap_or_else(|e| panic!("{} failed to reload: {e}", net.id));
        assert_eq!(back.name(), net.network.name(), "{}", net.id);
        let input = net.input();
        assert_eq!(
            net.network.forward_fixed(&input),
            back.forward_fixed(&input),
            "{}: golden inference changed across serialization",
            net.id
        );
    }
}

#[test]
fn reloaded_network_runs_bit_exact_on_the_core() {
    // One representative per kernel family, end to end through the
    // serialize -> load -> compile -> simulate pipeline.
    let suite = rnnasip::rrm::suite();
    let backend = KernelBackend::new(OptLevel::IfmTile);
    for id in ["naparstek2019", "eisen2019", "lee2018"] {
        let net = suite.iter().find(|n| n.id == id).expect("in suite");
        let reloaded = load_network(&save_network(&net.network)).expect("reloads");
        let input = net.input();
        let direct = backend
            .run_network(&net.network, &input)
            .expect("direct run");
        let via_io = backend
            .run_network(&reloaded, &input)
            .expect("reloaded run");
        assert_eq!(direct.outputs, via_io.outputs, "{id}");
        assert_eq!(
            direct.report.cycles(),
            via_io.report.cycles(),
            "{id}: cycle counts must be identical too"
        );
    }
}
