//! Section III-D: the `pl.tanh`/`pl.sig` instructions reduce LSTM
//! network cycles by ~13% (51.2 → 44.5 kcycles on the paper's two LSTM
//! networks). Level (c) bundles OFM tiling *and* the activation
//! extension, so this test isolates the activation effect by comparing
//! the activation-row cycles directly, plus the end-to-end gain.

use rnnasip::core::{KernelBackend, OptLevel};

fn lstm_net(id: &str) -> rnnasip::rrm::BenchmarkNet {
    rnnasip::rrm::suite()
        .into_iter()
        .find(|n| n.id == id)
        .expect("net exists")
}

#[test]
fn activation_extension_shrinks_lstm_cycles() {
    for id in ["challita2017", "naparstek2019"] {
        let net = lstm_net(id);
        let input = net.input();
        let b = KernelBackend::new(OptLevel::Xpulp)
            .run_network(&net.network, &input)
            .expect("level b runs")
            .report;
        let c = KernelBackend::new(OptLevel::OfmTile)
            .run_network(&net.network, &input)
            .expect("level c runs")
            .report;
        // At level c the activations are single-cycle instructions.
        let act_instrs = c.stats().row("pl.tanh").instrs + c.stats().row("pl.sig").instrs;
        assert_eq!(
            act_instrs,
            net.network.act_count(),
            "{id}: every activation should be one pl.tanh/pl.sig"
        );
        assert_eq!(
            act_instrs,
            c.stats().row("pl.tanh").cycles + c.stats().row("pl.sig").cycles,
            "{id}: hardware activations are single-cycle"
        );
        // The level-b software PLA spends >10 cycles per activation; the
        // whole-network gain from b to c must exceed the pure tiling
        // factor visible on FC networks of similar size.
        assert!(
            c.cycles() * 2 < b.cycles(),
            "{id}: c ({}) should be well under half of b ({})",
            c.cycles(),
            b.cycles()
        );
    }
}

#[test]
fn activation_fraction_is_higher_in_small_lstm() {
    // The paper: tanh/sig costs 10.3% of cycles in [13] but 33.6% in
    // [14] (before the extension). Verify the *ordering* on the software
    // PLA level by counting software activation work.
    let frac = |id: &str| -> f64 {
        let net = lstm_net(id);
        let run = KernelBackend::new(OptLevel::Xpulp)
            .run_network(&net.network, &net.input())
            .expect("runs")
            .report;
        // Software PLA work shows up as mul/srai/branch cycles; estimate
        // via the act count times the ~16-cycle routine.
        net.network.act_count() as f64 * 16.0 / run.cycles() as f64
    };
    let f13 = frac("challita2017");
    let f14 = frac("naparstek2019");
    assert!(
        f14 > 1.5 * f13,
        "small LSTM [14] ({f14:.3}) must be more activation-bound than [13] ({f13:.3})"
    );
    assert!(
        f14 > 0.15,
        "activation share of [14] is substantial: {f14:.3}"
    );
}
