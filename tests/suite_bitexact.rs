//! End-to-end bit-exactness of the whole RRM benchmark suite: the
//! simulated kernels must reproduce the golden fixed-point models
//! exactly, network by network.

use rnnasip::core::{KernelBackend, OptLevel};

/// Every suite network at the two extension levels (d, e) — the levels
/// that exercise the paper's new instructions end to end.
#[test]
fn full_suite_bit_exact_at_extension_levels() {
    for net in rnnasip::rrm::suite() {
        let input = net.input();
        let expect = net.network.forward_fixed(&input);
        for level in [OptLevel::SdotSp, OptLevel::IfmTile] {
            let run = KernelBackend::new(level)
                .run_network(&net.network, &input)
                .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", net.id));
            assert_eq!(run.outputs, expect, "{} at {level:?}", net.id);
        }
    }
}

/// The smaller networks across *all five* levels (baseline included).
#[test]
fn small_networks_bit_exact_at_all_levels() {
    let suite = rnnasip::rrm::suite();
    for id in ["eisen2019", "naparstek2019", "wang2018"] {
        let net = suite
            .iter()
            .find(|n| n.id == id)
            .expect("suite contains the network");
        let input = net.input();
        let expect = net.network.forward_fixed(&input);
        for level in OptLevel::ALL {
            let run = KernelBackend::new(level)
                .run_network(&net.network, &input)
                .unwrap_or_else(|e| panic!("{id} at {level:?}: {e}"));
            assert_eq!(run.outputs, expect, "{id} at {level:?}");
        }
    }
}

/// Suite-level speedups must match the paper's shape: strictly
/// increasing a→d, and (e) at least matching (d) on the suite total.
#[test]
fn suite_speedups_have_paper_shape() {
    let mut totals = Vec::new();
    let suite = rnnasip::rrm::suite();
    for level in OptLevel::ALL {
        let mut cycles = 0u64;
        for net in &suite {
            cycles += KernelBackend::new(level)
                .run_network(&net.network, &net.input())
                .expect("suite runs")
                .report
                .cycles();
        }
        totals.push(cycles);
    }
    let speedup = |i: usize| totals[0] as f64 / totals[i] as f64;
    // Paper: 4.4x, 8.4x, 14.3x, 15.0x. Allow generous tolerance — the
    // *shape* is the claim.
    assert!(
        (3.5..5.5).contains(&speedup(1)),
        "Xpulp speedup {}",
        speedup(1)
    );
    assert!(
        (7.0..10.0).contains(&speedup(2)),
        "OFM speedup {}",
        speedup(2)
    );
    assert!(
        (11.5..16.0).contains(&speedup(3)),
        "sdotsp speedup {}",
        speedup(3)
    );
    assert!(
        (12.5..17.0).contains(&speedup(4)),
        "IFM speedup {}",
        speedup(4)
    );
    assert!(speedup(4) > speedup(3), "IFM tiling helps on the suite");
}

/// Staged execution (one program per stage) must agree exactly with the
/// monolithic program — they use the same kernels and staging.
#[test]
fn staged_and_monolithic_runs_agree() {
    let backend = KernelBackend::new(OptLevel::IfmTile);
    for net in rnnasip::rrm::suite() {
        let input = net.input();
        let mono = backend
            .run_network(&net.network, &input)
            .expect("monolithic run");
        let (staged_out, stages) = backend
            .run_network_staged(&net.network, &input)
            .expect("staged run");
        assert_eq!(mono.outputs, staged_out, "{}", net.id);
        assert_eq!(stages.len(), net.network.stages().len(), "{}", net.id);
        // Stage cycles sum close to the monolithic count (staging skips
        // the inter-stage instructions the monolithic program shares).
        let sum: u64 = stages.iter().map(|s| s.report.cycles()).sum();
        let mono_cycles = mono.report.cycles();
        let diff = (sum as f64 - mono_cycles as f64).abs() / mono_cycles as f64;
        assert!(
            diff < 0.02,
            "{}: staged {sum} vs mono {mono_cycles}",
            net.id
        );
    }
}
